"""Tests for the overlapped producer pipeline and the hot-path fixes riding with it.

Covers the :class:`~repro.core.pipeline.StagePipeline` primitive (ordering,
bounded in-flight window, drain-on-close, error propagation), the producer
running with ``pipeline_depth > 1`` (full delivery, mid-epoch stop, consumer
churn, skip-epoch drain, flexible batching, leak-free shutdown), and the
correctness fixes in the same hot path: duplicate delivery to rubberbanded
joiners, the strict rubberband window boundary, ``TensorConsumer.__len__``,
and heartbeat-sender restart.
"""

import threading
import time

import pytest

from repro.core import (
    ConsumerConfig,
    ProducerConfig,
    SharedLoaderSession,
    StagedItem,
    StagePipeline,
    TensorConsumer,
    TensorProducer,
)
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
import numpy as np

from repro.messaging import InProcHub
from repro.messaging.heartbeat import HeartbeatSender
from repro.messaging.message import MessageKind
from repro.messaging.sockets import PubSocket, PullSocket, PushSocket
from repro.tensor import BatchPayload, SharedMemoryPool, from_numpy


def small_loader(size=48, batch_size=8, image_size=16, num_workers=0):
    dataset = SyntheticImageDataset(size, image_size=image_size, payload_bytes=32)
    pipeline = Compose([DecodeJpeg(height=image_size, width=image_size), Normalize(), ToTensor()])
    return DataLoader(
        dataset, batch_size=batch_size, transform=pipeline, num_workers=num_workers
    )


def assert_pool_drained(session, timeout=5.0):
    """Assert no staged bytes leak — BEFORE session.shutdown(), which zeroes
    the pool's accounting unconditionally and would make the check vacuous."""
    deadline = time.time() + timeout
    while session.pool.bytes_in_flight and time.time() < deadline:
        time.sleep(0.02)
    assert session.pool.bytes_in_flight == 0
    assert session.pool.live_segments == 0


def run_consumer(session, name, results, max_epochs=1, delay=0.0, stop_after=None):
    if delay:
        time.sleep(delay)
    consumer = session.consumer(
        ConsumerConfig(consumer_id=name, max_epochs=max_epochs, receive_timeout=20)
    )
    seen = []
    for batch in consumer:
        seen.append(tuple(batch["index"].tolist()))
        if stop_after is not None and len(seen) >= stop_after:
            break
    results[name] = seen
    consumer.close()


# ---------------------------------------------------------------------------
# StagePipeline primitive
# ---------------------------------------------------------------------------


class TestStagePipeline:
    def stage(self, item):
        return StagedItem(index=item, value=item * 10)

    def test_depth_one_is_synchronous_and_lazy(self):
        staged_log = []

        def stage(item):
            staged_log.append(item)
            return StagedItem(index=item, value=item)

        pipeline = StagePipeline(iter(range(5)), stage, depth=1)
        assert not pipeline.is_background
        assert staged_log == []  # nothing staged until pulled
        first = next(pipeline)
        assert first.value == 0 and staged_log == [0]
        assert [item.value for item in pipeline] == [1, 2, 3, 4]
        pipeline.close()

    def test_background_mode_preserves_source_order(self):
        pipeline = StagePipeline(iter(range(50)), self.stage, depth=4)
        assert pipeline.is_background
        values = [item.value for item in pipeline]
        assert values == [i * 10 for i in range(50)]
        pipeline.close()

    def test_in_flight_window_is_bounded(self):
        consumed = []
        staged_count = [0]
        max_ahead = [0]

        def stage(item):
            staged_count[0] += 1
            max_ahead[0] = max(max_ahead[0], staged_count[0] - len(consumed))
            return StagedItem(index=item, value=item)

        depth = 3
        pipeline = StagePipeline(iter(range(30)), stage, depth=depth)
        for item in pipeline:
            time.sleep(0.002)  # let the worker run ahead as far as it can
            consumed.append(item.value)
        pipeline.close()
        assert consumed == list(range(30))
        # The worker may hold one item in hand beyond the queue, and the
        # consumer one more; anything past depth + 2 means the bound leaks.
        assert max_ahead[0] <= depth + 2

    def test_close_drains_and_releases_unconsumed_items(self):
        released = []
        pipeline = StagePipeline(
            iter(range(100)),
            self.stage,
            depth=4,
            release_fn=lambda item: released.append(item.index),
        )
        consumed = [next(pipeline).index for _ in range(3)]
        pipeline.close()
        pipeline.close()  # idempotent
        assert consumed == [0, 1, 2]
        # Whatever was staged beyond what we consumed was handed back.
        assert pipeline.items_staged == len(consumed) + len(released)
        assert not set(consumed) & set(released)

    def test_source_error_propagates_to_consumer(self):
        def broken():
            yield 1
            raise RuntimeError("loader died")

        pipeline = StagePipeline(broken(), self.stage, depth=2)
        assert next(pipeline).value == 10
        with pytest.raises(RuntimeError, match="loader died"):
            for _ in pipeline:
                pass
        pipeline.close()

    def test_stage_error_propagates_to_consumer(self):
        def stage(item):
            if item == 2:
                raise ValueError("bad batch")
            return StagedItem(index=item, value=item)

        pipeline = StagePipeline(iter(range(5)), stage, depth=2)
        with pytest.raises(ValueError, match="bad batch"):
            for _ in pipeline:
                pass
        pipeline.close()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            StagePipeline(iter(()), self.stage, depth=0)


# ---------------------------------------------------------------------------
# DataLoader.prefetch_iter
# ---------------------------------------------------------------------------


class TestPrefetchIter:
    def test_worker_override_delivers_every_batch_in_order(self):
        loader = small_loader(size=40, batch_size=8)  # num_workers=0
        batches = list(loader.prefetch_iter(max_in_flight=2, num_workers=2))
        reference = list(iter(loader))
        assert len(batches) == len(reference) == 5
        for got, want in zip(batches, reference):
            assert got["index"].tolist() == want["index"].tolist()

    def test_close_mid_epoch_stops_iteration(self):
        loader = small_loader(size=80, batch_size=8)
        iterator = loader.prefetch_iter(max_in_flight=2, num_workers=2)
        first = next(iterator)
        assert first["index"].shape[0] == 8
        iterator.close()
        # After close the iterator ends instead of waiting forever on worker
        # results that will never arrive.
        remaining = sum(1 for _ in iterator)
        assert remaining <= 2  # at most what was already in flight

    def test_validation(self):
        loader = small_loader(size=16)
        with pytest.raises(ValueError):
            loader.prefetch_iter(max_in_flight=0, num_workers=1)
        with pytest.raises(ValueError):
            loader.prefetch_iter(num_workers=-1)


# ---------------------------------------------------------------------------
# Producer integration with pipeline_depth > 1
# ---------------------------------------------------------------------------


class TestPipelinedProducer:
    @pytest.mark.parametrize("depth", [2, 4])
    def test_every_batch_delivered_once_and_pool_drained(self, depth):
        session = SharedLoaderSession(
            small_loader(),
            producer_config=ProducerConfig(
                epochs=2, poll_interval=0.002, pipeline_depth=depth
            ),
        )
        results = {}
        threads = [
            threading.Thread(
                target=run_consumer, args=(session, f"c{i}", results), kwargs={"max_epochs": 2}
            )
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(not t.is_alive() for t in threads)
        assert_pool_drained(session)
        session.shutdown()
        assert results["c0"] == results["c1"]
        assert len(results["c0"]) == 12  # 6 batches x 2 epochs
        per_epoch = [i for indices in results["c0"][:6] for i in indices]
        assert sorted(per_epoch) == list(range(48))

    def test_pipeline_composes_with_loader_workers(self):
        session = SharedLoaderSession(
            small_loader(num_workers=2),
            producer_config=ProducerConfig(
                epochs=1, poll_interval=0.002, pipeline_depth=3
            ),
        )
        results = {}
        session.start()
        run_consumer(session, "c0", results)
        assert_pool_drained(session)
        session.shutdown()
        assert len(results["c0"]) == 6
        assert sorted(i for indices in results["c0"] for i in indices) == list(range(48))

    def test_mid_epoch_stop_releases_every_staged_batch(self):
        session = SharedLoaderSession(
            small_loader(size=160, batch_size=8),
            producer_config=ProducerConfig(
                epochs=None, poll_interval=0.002, pipeline_depth=4
            ),
        )
        results = {}
        session.start()
        consumer_thread = threading.Thread(
            target=run_consumer,
            args=(session, "c0", results),
            kwargs={"stop_after": 3, "max_epochs": 1},
        )
        consumer_thread.start()
        consumer_thread.join(timeout=30)
        assert not consumer_thread.is_alive()
        session.producer.stop()
        # The staged batches in flight when stop() hit must all be drained
        # (checked before shutdown(), which zeroes the accounting).
        assert_pool_drained(session)
        session.shutdown()
        assert len(results["c0"]) == 3

    def test_consumer_churn_under_overlap(self):
        session = SharedLoaderSession(
            small_loader(size=64, batch_size=8),
            producer_config=ProducerConfig(
                epochs=1, heartbeat_timeout=3, poll_interval=0.002, pipeline_depth=4
            ),
        )
        results = {}
        quitter = threading.Thread(
            target=run_consumer,
            args=(session, "quitter", results),
            kwargs={"stop_after": 2},
        )
        stayer = threading.Thread(target=run_consumer, args=(session, "stayer", results))
        quitter.start()
        stayer.start()
        time.sleep(0.3)
        session.start()
        quitter.join(timeout=30)
        stayer.join(timeout=30)
        assert not stayer.is_alive()
        assert_pool_drained(session)
        session.shutdown()
        assert len(results["stayer"]) == 8

    def test_skip_epoch_drains_staged_batches(self):
        """All consumers leave mid-epoch while a newcomer waits for the next
        epoch: the abandoned epoch's staged batches must not leak."""
        session = SharedLoaderSession(
            small_loader(size=80, batch_size=8),
            producer_config=ProducerConfig(
                epochs=2,
                rubberband_fraction=0.0,  # newcomers always park to the next epoch
                heartbeat_timeout=5,
                poll_interval=0.002,
                pipeline_depth=4,
            ),
        )
        results = {}
        leaver = threading.Thread(
            target=run_consumer,
            args=(session, "leaver", results),
            kwargs={"stop_after": 2},
        )
        leaver.start()
        time.sleep(0.2)
        session.start()
        leaver.join(timeout=30)
        # Now nobody is consuming; the parked newcomer forces a skip-epoch.
        late = threading.Thread(
            target=run_consumer,
            args=(session, "late", results),
            kwargs={"delay": 0.2, "max_epochs": 1},
        )
        late.start()
        late.join(timeout=30)
        assert not late.is_alive()
        assert_pool_drained(session)
        session.shutdown()
        # The late joiner was served a full fresh epoch.
        assert len(results["late"]) == 10

    def test_flexible_batching_with_pipeline_depth(self):
        session = SharedLoaderSession(
            small_loader(size=64, batch_size=16),
            producer_config=ProducerConfig(
                epochs=1,
                flexible_batching=True,
                producer_batch_size=32,
                poll_interval=0.002,
                pipeline_depth=3,
            ),
        )
        sizes = {}

        def consume(name, batch_size):
            consumer = session.consumer(
                ConsumerConfig(
                    consumer_id=name, batch_size=batch_size, max_epochs=1, receive_timeout=20
                )
            )
            observed = set()
            total = 0
            for batch in consumer:
                observed.add(batch["image"].shape[0])
                total += batch["image"].shape[0]
            sizes[name] = (observed, total)
            consumer.close()

        threads = [
            threading.Thread(target=consume, args=("small", 8)),
            threading.Thread(target=consume, args=("large", 16)),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        session.start()
        for thread in threads:
            thread.join(timeout=40)
        assert all(not t.is_alive() for t in threads)
        assert_pool_drained(session)
        session.shutdown()
        assert sizes["small"][0] == {8}
        assert sizes["large"][0] == {16}
        assert sizes["small"][1] >= 64
        assert sizes["large"][1] >= 64

    def test_depth_one_stays_synchronous(self):
        """The default depth spawns no stage worker (today's behaviour)."""
        before = {t.name for t in threading.enumerate()}
        session = SharedLoaderSession(
            small_loader(size=16, batch_size=8),
            producer_config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        results = {}
        session.start()
        run_consumer(session, "c0", results)
        during = {t.name for t in threading.enumerate()} - before
        session.shutdown()
        assert len(results["c0"]) == 2
        assert not any("stage" in name for name in during)

    def test_depth_one_does_not_stage_while_waiting_for_consumers(self):
        """At the default depth the classic order holds: a batch is loaded
        before the capacity wait but staged only at publish time, so no
        shared memory is held while the producer idles for its first
        consumer."""
        session = SharedLoaderSession(
            small_loader(size=16, batch_size=8),
            producer_config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        results = {}
        session.start()
        time.sleep(0.3)
        assert session.producer.payloads_published == 0
        assert session.producer.batches_loaded == 0  # nothing staged yet
        assert session.pool.bytes_in_flight == 0
        run_consumer(session, "c0", results)
        assert_pool_drained(session)
        session.shutdown()
        assert len(results["c0"]) == 2

    def test_pipeline_config_validation(self):
        with pytest.raises(ValueError):
            ProducerConfig(pipeline_depth=0)
        with pytest.raises(ValueError):
            ProducerConfig(pipeline_workers=-1)


# ---------------------------------------------------------------------------
# Duplicate delivery to rubberbanded joiners (regression)
# ---------------------------------------------------------------------------


class TestDuplicateDeliveryRegression:
    def test_joiner_never_trains_on_the_same_batch_twice(self):
        """The producer publishes between a consumer's subscribe and its HELLO
        processing, then replays the window: the consumer must train exactly
        once per batch, acknowledge the duplicates, and leave no memory pinned.

        The producer is stepped on the main thread so the replay happens at an
        exact point; the consumers iterate on their own threads (the producer
        halts for a catching-up joiner, so its acks must flow concurrently).
        """
        hub = InProcHub()
        pool = SharedMemoryPool()
        producer = TensorProducer(
            small_loader(size=32, batch_size=8),  # 4 batches/epoch
            hub=hub,
            pool=pool,
            config=ProducerConfig(
                epochs=1,
                rubberband_fraction=0.75,  # window = 3 batches
                buffer_size=16,
                poll_interval=0.002,
            ),
        )
        first = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(
                consumer_id="first", max_epochs=1, buffer_size=16, receive_timeout=20
            ),
        )
        seen = {}

        def consume(consumer, name):
            seen[name] = [tuple(batch["index"].tolist()) for batch in consumer]

        first_thread = threading.Thread(target=consume, args=(first, "first"))
        first_thread.start()
        iterator = iter(producer)
        next(iterator)  # registers "first", publishes + window-caches batch 0

        late = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(
                consumer_id="late", max_epochs=1, buffer_size=16, receive_timeout=20
            ),
        )
        late_thread = threading.Thread(target=consume, args=(late, "late"))
        late_thread.start()
        next(iterator)  # processes late's HELLO (catch-up: replays batch 0), publishes batch 1
        assert producer.rubberband.joins_caught_up == 1
        # The race under test: the window (batches 0 and 1) is replayed again,
        # duplicating deliveries the consumer already received.
        producer._replay_window(producer._consumers["late"])
        for _ in iterator:  # batches 2 and 3, epoch end
            pass
        first_thread.join(timeout=20)
        late_thread.join(timeout=20)
        assert not first_thread.is_alive() and not late_thread.is_alive()
        producer.join(timeout=5)

        assert late.duplicates_dropped == 2
        assert first.duplicates_dropped == 0
        # Every sample exactly once for both consumers — no double training.
        assert sorted(i for indices in seen["first"] for i in indices) == list(range(32))
        assert sorted(i for indices in seen["late"] for i in indices) == list(range(32))
        # The duplicate acknowledgements released every replay hold.
        assert producer.ledger.pending_batches == 0
        assert pool.bytes_in_flight == 0
        first.close()
        late.close()

    @staticmethod
    def _manual_channel(pool):
        """A hand-driven producer side: raw pub + control sockets."""
        hub = InProcHub()
        pub = PubSocket(hub, "tensorsocket/data")
        control = PullSocket(hub, "tensorsocket/control")

        def payload_for(index):
            staged = {
                "x": pool.share_tensor(from_numpy(np.full(4, index, dtype=np.float32)))
            }
            return BatchPayload.pack(staged, batch_index=index, epoch=0)

        return hub, pub, control, payload_for

    def test_duplicate_of_buffered_batch_is_not_acknowledged_early(self):
        """A duplicate arriving while the original is still un-trained in the
        buffer must NOT be acknowledged: an early ack clears the producer's
        outstanding count while the batch still occupies a buffer slot,
        letting the producer overrun the consumer's buffer capacity."""
        pool = SharedMemoryPool()
        hub, pub, control, payload_for = self._manual_channel(pool)
        consumer = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(consumer_id="d", max_epochs=1, buffer_size=2),
        )
        pub.send(
            MessageKind.REPLY,
            body={"consumer_id": "d", "admitted_epoch": 0},
            topic="consumer/d",
        )
        p0, p1 = payload_for(0), payload_for(1)
        pub.send(MessageKind.BATCH, body=p0, topic="broadcast")
        pub.send(MessageKind.BATCH, body=p0, topic="consumer/d")  # dup, un-trained
        pub.send(MessageKind.BATCH, body=p1, topic="broadcast")
        pub.send(MessageKind.EPOCH_END, body={"epoch": 0, "batches": 2}, topic="broadcast")
        # The reactor fans deliveries into the mailbox concurrently with this
        # thread; wait for all of them so the duplicate is provably ingested
        # while the original sits un-trained in the buffer (the case under
        # test).  If the dup straggled in after batch 0's training ack, it
        # would legitimately be re-acknowledged as a rubberband replay.
        deadline = time.monotonic() + 5.0
        while consumer._mailbox.qsize() < 4 and time.monotonic() < deadline:
            time.sleep(0.002)
        assert consumer._mailbox.qsize() >= 4
        values = [batch["x"].numpy()[0] for batch in consumer]
        assert values == [0.0, 1.0]
        assert consumer.duplicates_dropped == 1
        ack_keys = [
            (m.body["epoch"], m.body["batch_index"])
            for m in control.drain()
            if m.kind is MessageKind.ACK
        ]
        assert ack_keys.count((0, 0)) == 1  # exactly the training ack, no early dup ack
        assert ack_keys.count((0, 1)) == 1
        consumer.close()
        pool.shutdown()

    def test_duplicate_after_acknowledgement_is_acknowledged(self):
        """A duplicate of a batch already trained and acked IS acked again —
        that is the case where the producer re-sent it with a fresh hold
        that only this ack can release."""
        pool = SharedMemoryPool()
        hub, pub, control, payload_for = self._manual_channel(pool)
        consumer = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(consumer_id="d", max_epochs=1, buffer_size=2),
        )
        pub.send(
            MessageKind.REPLY,
            body={"consumer_id": "d", "admitted_epoch": 0},
            topic="consumer/d",
        )
        p0, p1 = payload_for(0), payload_for(1)
        pub.send(MessageKind.BATCH, body=p0, topic="broadcast")
        iterator = iter(consumer)
        next(iterator)  # trains p0 (its ack is sent when iteration resumes)
        pub.send(MessageKind.BATCH, body=p0, topic="consumer/d")  # dup, post-training
        pub.send(MessageKind.BATCH, body=p1, topic="broadcast")
        pub.send(MessageKind.EPOCH_END, body={"epoch": 0, "batches": 2}, topic="broadcast")
        assert sum(1 for _ in iterator) == 1
        assert consumer.duplicates_dropped == 1
        ack_keys = [
            (m.body["epoch"], m.body["batch_index"])
            for m in control.drain()
            if m.kind is MessageKind.ACK
        ]
        assert ack_keys.count((0, 0)) == 2  # training ack + duplicate ack
        assert ack_keys.count((0, 1)) == 1
        consumer.close()
        pool.shutdown()

    def test_repeated_replay_takes_no_extra_holds(self):
        """Replaying a window twice must not double-retain segments for a
        consumer that already owes an ack for them."""
        hub = InProcHub()
        pool = SharedMemoryPool()
        producer = TensorProducer(
            small_loader(size=32, batch_size=8),
            hub=hub,
            pool=pool,
            config=ProducerConfig(
                epochs=1, rubberband_fraction=0.75, buffer_size=16, poll_interval=0.002
            ),
        )
        first = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(consumer_id="first", max_epochs=1, buffer_size=16),
        )
        iterator = iter(producer)
        next(iterator)
        late = TensorConsumer(
            hub=hub, pool=pool,
            config=ConsumerConfig(consumer_id="late", max_epochs=1, buffer_size=16),
        )
        producer._process_control()  # admits "late", replays batch 0
        state = producer._consumers["late"]
        segment = producer._window_cache[0].segment_names[0]
        refcount_after_first_replay = pool.refcount(segment)
        producer._replay_window(state)
        assert pool.refcount(segment) == refcount_after_first_replay
        producer.stop()
        for consumer in (first, late):
            consumer.close()
        producer.join(timeout=5)
        assert pool.bytes_in_flight == 0


# ---------------------------------------------------------------------------
# Rubberband window boundary (strict "before 2%")
# ---------------------------------------------------------------------------


class TestRubberbandWindowBoundary:
    def test_join_at_exact_window_boundary_waits(self):
        policy = RubberbandPolicy(0.02, batches_per_epoch=1000)  # window = 20
        assert policy.within_window(19)
        assert not policy.within_window(20)  # the window has been fully iterated
        assert policy.decide("on-boundary", 20) is JoinDecision.WAIT_FOR_NEXT_EPOCH
        assert policy.decide("inside", 19) is JoinDecision.CATCH_UP

    def test_single_batch_window_only_admits_before_first_publish_completes(self):
        policy = RubberbandPolicy(0.02, batches_per_epoch=10)  # window = max(1, 0) = 1
        assert policy.decide("immediate", 0) is JoinDecision.IMMEDIATE
        assert policy.decide("late", 1) is JoinDecision.WAIT_FOR_NEXT_EPOCH


# ---------------------------------------------------------------------------
# Consumer __len__ (batches in the last completed epoch)
# ---------------------------------------------------------------------------


class TestConsumerLen:
    def test_len_does_not_double_across_epochs(self):
        session = SharedLoaderSession(
            small_loader(size=24, batch_size=8),
            producer_config=ProducerConfig(epochs=3, poll_interval=0.002),
        )
        session.start()
        consumer = session.consumer(
            ConsumerConfig(consumer_id="sized", max_epochs=3, receive_timeout=20)
        )
        lengths = []
        for batch in consumer:
            del batch
            lengths.append(len(consumer))
        session.shutdown()
        assert consumer.batches_consumed == 9
        # After the run, len() reports one epoch's batches, not the total.
        assert len(consumer) == 3
        # And it can feed RubberbandPolicy.set_epoch_length as a sized loader.
        policy = RubberbandPolicy(0.5)
        policy.set_epoch_length(len(consumer))
        assert policy.window_batches == 1

    def test_len_before_first_epoch_completes_tracks_progress(self):
        session = SharedLoaderSession(
            small_loader(size=16, batch_size=8),
            producer_config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        session.start()
        consumer = session.consumer(
            ConsumerConfig(consumer_id="early", max_epochs=1, receive_timeout=20)
        )
        iterator = iter(consumer)
        next(iterator)
        assert len(consumer) == 1  # best-effort running count, as before
        for _ in iterator:
            pass
        session.shutdown()
        assert len(consumer) == 2


# ---------------------------------------------------------------------------
# Heartbeat sender restart (regression)
# ---------------------------------------------------------------------------


class TestHeartbeatSenderRestart:
    def test_run_background_after_stop_sends_again(self):
        hub = InProcHub()
        pull = PullSocket(hub, "control")
        push = PushSocket(hub, "control")
        sender = HeartbeatSender(push, "c1", interval=0.01)
        sender.run_background()
        deadline = time.time() + 2
        while sender.beats_sent == 0 and time.time() < deadline:
            time.sleep(0.005)
        sender.stop()
        sent_before_restart = sender.beats_sent
        assert sent_before_restart > 0

        # Regression: the stop event used to stay set, so a restarted
        # background sender exited without ever beating again.
        sender.run_background()
        deadline = time.time() + 2
        while sender.beats_sent <= sent_before_restart and time.time() < deadline:
            time.sleep(0.005)
        sender.stop()
        assert sender.beats_sent > sent_before_restart
        beats = pull.drain()
        assert all(m.kind is MessageKind.HEARTBEAT for m in beats)
