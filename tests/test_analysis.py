"""Tests for ``repro.analysis`` (reprolint), the concurrency-invariant linter.

Layout mirrors the analyzer itself:

* a fixture corpus of small good/bad modules per check (RL001–RL007), run
  through :func:`repro.analysis.analyze_source`;
* finding-identity tests (ids stable under reformatting, occurrence
  numbering for duplicate sites);
* baseline round-trip, inline-pragma suppression, JSON output schema and
  exit codes through the real CLI;
* a meta-test that the committed ``src/`` tree is clean — the same gate CI
  runs via ``python -m repro.analysis src``;
* regression tests for real defects the first analyzer run found in ``src/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.cli import main as reprolint_main
from repro.analysis.driver import CHECKS
from repro.analysis.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def findings_for(source: str, *checks: str, path: str = "snippet.py"):
    return analyze_source(textwrap.dedent(source), path=path, checks=list(checks) or None)


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ---------------------------------------------------------------------------
# RL001 — guarded attributes
# ---------------------------------------------------------------------------


class TestGuardedAttributes:
    def test_flags_unlocked_read_of_guarded_attr(self):
        findings = findings_for(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = {}  #: guarded by _lock

                def size(self):
                    return len(self._records)
            """,
            "RL001",
        )
        assert rules_of(findings) == ["RL001"]
        assert "self._records" in findings[0].message
        assert findings[0].qualname == "Pool.size"

    def test_flags_unlocked_module_global(self):
        findings = findings_for(
            """
            import threading

            _REG_LOCK = threading.Lock()
            _REGISTRY = {}  #: guarded by _REG_LOCK

            def lookup(name):
                return _REGISTRY.get(name)
            """,
            "RL001",
        )
        assert rules_of(findings) == ["RL001"]
        assert "_REGISTRY" in findings[0].message

    def test_access_under_lock_is_clean(self):
        findings = findings_for(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = {}  #: guarded by _lock

                def size(self):
                    with self._lock:
                        return len(self._records)
            """,
            "RL001",
        )
        assert findings == []

    def test_locked_suffix_helpers_and_init_are_exempt(self):
        # ``*_locked`` is the caller-holds-the-lock convention; __init__ runs
        # single-threaded.  Neither may be flagged.
        findings = findings_for(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = {}  #: guarded by _lock
                    self._records["seed"] = 1

                def _record_for_locked(self, key):
                    return self._records[key]
            """,
            "RL001",
        )
        assert findings == []

    def test_global_access_under_its_lock_is_clean(self):
        findings = findings_for(
            """
            import threading

            _REG_LOCK = threading.Lock()
            _REGISTRY = {}  #: guarded by _REG_LOCK

            def register(name, value):
                with _REG_LOCK:
                    _REGISTRY[name] = value
            """,
            "RL001",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL002 — blocking under a held lock
# ---------------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_flags_sleep_under_lock(self):
        findings = findings_for(
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def spin(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
            "RL002",
        )
        assert rules_of(findings) == ["RL002"]
        assert "time.sleep()" in findings[0].message

    def test_flags_queue_get_under_lock(self):
        findings = findings_for(
            """
            import queue
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._inbox.get()
            """,
            "RL002",
        )
        assert rules_of(findings) == ["RL002"]
        assert "Queue.get()" in findings[0].message

    def test_nonblocking_queue_get_is_clean(self):
        findings = findings_for(
            """
            import queue
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._inbox.get(block=False)
            """,
            "RL002",
        )
        assert findings == []

    def test_condition_wait_on_own_lock_is_clean(self):
        # cond.wait() releases the condition's own lock — that is the point
        # of a condition variable, not a lock-held blocking call.
        findings = findings_for(
            """
            import threading

            class Mailbox:
                def __init__(self):
                    self._cond = threading.Condition()

                def take(self):
                    with self._cond:
                        self._cond.wait()
            """,
            "RL002",
        )
        assert findings == []

    def test_condition_wait_with_second_lock_held_is_flagged(self):
        findings = findings_for(
            """
            import threading

            class Mailbox:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()

                def take(self):
                    with self._lock:
                        with self._cond:
                            self._cond.wait()
            """,
            "RL002",
        )
        assert rules_of(findings) == ["RL002"]


# ---------------------------------------------------------------------------
# RL003 — lock-order cycles
# ---------------------------------------------------------------------------


class TestLockOrderCycles:
    def test_flags_direct_ab_ba_cycle(self):
        findings = findings_for(
            """
            import threading

            _LOCK_A = threading.Lock()
            _LOCK_B = threading.Lock()

            def ab():
                with _LOCK_A:
                    with _LOCK_B:
                        pass

            def ba():
                with _LOCK_B:
                    with _LOCK_A:
                        pass
            """,
            "RL003",
        )
        assert rules_of(findings) == ["RL003"]
        assert "_LOCK_A" in findings[0].message and "_LOCK_B" in findings[0].message

    def test_flags_interprocedural_cycle(self):
        # Neither function nests two ``with`` blocks; the cycle only exists
        # through the call graph.
        findings = findings_for(
            """
            import threading

            _LOCK_A = threading.Lock()
            _LOCK_B = threading.Lock()

            def ab():
                with _LOCK_A:
                    grab_b()

            def grab_b():
                with _LOCK_B:
                    pass

            def ba():
                with _LOCK_B:
                    grab_a()

            def grab_a():
                with _LOCK_A:
                    pass
            """,
            "RL003",
        )
        assert rules_of(findings) == ["RL003"]

    def test_consistent_order_is_clean(self):
        findings = findings_for(
            """
            import threading

            _LOCK_A = threading.Lock()
            _LOCK_B = threading.Lock()

            def first():
                with _LOCK_A:
                    with _LOCK_B:
                        pass

            def second():
                with _LOCK_A:
                    with _LOCK_B:
                        pass
            """,
            "RL003",
        )
        assert findings == []

    def test_reentrant_self_acquisition_is_clean(self):
        # An RLock re-acquired through a helper is legal reentrancy, not a
        # deadlock; only plain-Lock self-edges deadlock.
        findings = findings_for(
            """
            import threading

            _LOCK = threading.RLock()

            def outer():
                with _LOCK:
                    inner()

            def inner():
                with _LOCK:
                    pass
            """,
            "RL003",
        )
        assert findings == []

    def test_plain_lock_self_acquisition_is_flagged(self):
        findings = findings_for(
            """
            import threading

            _LOCK = threading.Lock()

            def outer():
                with _LOCK:
                    inner()

            def inner():
                with _LOCK:
                    pass
            """,
            "RL003",
        )
        assert rules_of(findings) == ["RL003"]


# ---------------------------------------------------------------------------
# RL004 — hold pairing
# ---------------------------------------------------------------------------


class TestHoldPairing:
    def test_flags_normal_path_release(self):
        findings = findings_for(
            """
            class Publisher:
                def publish(self, pool, tensor):
                    handle = pool.retain(tensor)
                    self.send(handle)
                    pool.release(handle)
            """,
            "RL004",
        )
        assert rules_of(findings) == ["RL004"]
        assert "try/finally" in findings[0].message

    def test_flags_attach_close_on_normal_path(self):
        findings = findings_for(
            """
            def read(pool, name):
                segment = pool.attach(name)
                data = segment.read()
                segment.close()
                return data
            """,
            "RL004",
        )
        assert rules_of(findings) == ["RL004"]

    def test_release_in_finally_is_clean(self):
        findings = findings_for(
            """
            def read(pool, name):
                segment = pool.attach(name)
                try:
                    return segment.read()
                finally:
                    segment.close()
            """,
            "RL004",
        )
        assert findings == []

    def test_context_manager_is_clean(self):
        findings = findings_for(
            """
            def read(pool, name):
                with pool.attach(name) as segment:
                    return segment.read()
            """,
            "RL004",
        )
        assert findings == []

    def test_acquire_only_ownership_transfer_is_clean(self):
        # The producer retains; the consumer-ack path releases much later in
        # another function.  Acquire-without-release is a transfer, not a leak.
        findings = findings_for(
            """
            class Publisher:
                def publish(self, pool, tensor):
                    handle = pool.retain(tensor)
                    self.outbox.append(handle)
            """,
            "RL004",
        )
        assert findings == []

    def test_release_only_in_except_is_clean(self):
        # Compensation pattern: keep the hold on success, give it back on
        # failure.
        findings = findings_for(
            """
            class Publisher:
                def publish(self, pool, tensor):
                    handle = pool.retain(tensor)
                    try:
                        self.send(handle)
                    except OSError:
                        pool.release(handle)
                        raise
            """,
            "RL004",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL005 — thread hygiene
# ---------------------------------------------------------------------------


class TestThreadHygiene:
    def test_flags_bare_thread(self):
        findings = findings_for(
            """
            import threading

            def start(target):
                thread = threading.Thread(target=target)
                thread.start()
            """,
            "RL005",
        )
        assert rules_of(findings) == ["RL005"]
        assert "name=" in findings[0].message
        assert "daemon=" in findings[0].message

    def test_flags_wrong_prefix_and_missing_daemon(self):
        findings = findings_for(
            """
            import threading

            def start(target):
                thread = threading.Thread(target=target, name="worker-1")
                thread.start()
            """,
            "RL005",
        )
        assert rules_of(findings) == ["RL005"]
        assert 'start with "repro-"' in findings[0].message

    def test_compliant_thread_is_clean(self):
        findings = findings_for(
            """
            import threading

            def start(target):
                thread = threading.Thread(
                    target=target, name="repro-pump", daemon=True
                )
                thread.start()
            """,
            "RL005",
        )
        assert findings == []

    def test_fstring_repro_prefix_is_clean(self):
        findings = findings_for(
            """
            import threading

            def start(target, index):
                thread = threading.Thread(
                    target=target, name=f"repro-worker-{index}", daemon=False
                )
                thread.start()
            """,
            "RL005",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL006 — reactor affinity
# ---------------------------------------------------------------------------


class TestReactorAffinity:
    def test_flags_sleep_in_reactor_only_code(self):
        findings = findings_for(
            """
            import time

            from repro.messaging.reactor import reactor_only

            class Loop:
                @reactor_only
                def _pump(self):
                    time.sleep(0.1)
            """,
            "RL006",
        )
        assert rules_of(findings) == ["RL006"]
        assert "stall the event loop" in findings[0].message

    def test_flags_dialing_in_on_readable_callback(self):
        # ``_on_readable``-style callbacks are reactor-affine even without
        # the decorator, and dialing (unlike readiness-driven recv) blocks.
        findings = findings_for(
            """
            import socket

            class Conn:
                def _on_readable(self):
                    peer = socket.create_connection(("backup", 9999))
                    return peer
            """,
            "RL006",
        )
        assert rules_of(findings) == ["RL006"]

    def test_flags_selector_touch_outside_reactor_code(self):
        findings = findings_for(
            """
            import selectors

            class Loop:
                def __init__(self):
                    self._selector = selectors.DefaultSelector()

                def poke(self, sock):
                    self._selector.register(sock, selectors.EVENT_READ)
            """,
            "RL006",
        )
        assert rules_of(findings) == ["RL006"]
        assert "selector state" in findings[0].message

    def test_reactor_loop_shape_is_clean(self):
        # The canonical loop: selector.select() and recv on the watched
        # socket are the reactor's own job, and __init__ may build the
        # selector.
        findings = findings_for(
            """
            import selectors

            from repro.messaging.reactor import reactor_only

            class Loop:
                def __init__(self, sock):
                    self._selector = selectors.DefaultSelector()
                    self._sock = sock

                @reactor_only
                def _run(self):
                    while True:
                        self._selector.select(0.1)

                def _on_readable(self):
                    return self._sock.recv(4096)
            """,
            "RL006",
        )
        assert findings == []

    def test_undecorated_blocking_helper_is_clean(self):
        # Blocking is fine off the reactor thread; RL006 only polices
        # reactor-affine functions.
        findings = findings_for(
            """
            import time

            class Helper:
                def wait_a_bit(self):
                    time.sleep(0.1)
            """,
            "RL006",
        )
        assert findings == []

    def test_metric_recording_in_reactor_code_is_clean(self):
        # Module-level instrument handles record through per-thread cells:
        # inc/observe never block, so the reactor thread may call them.
        findings = findings_for(
            """
            from repro.obs.metrics import counter, histogram

            from repro.messaging.reactor import reactor_only

            _DISPATCHES = counter("repro.reactor.dispatches")
            _LATENCY = histogram("repro.reactor.dispatch_seconds")

            class Loop:
                @reactor_only
                def _pump(self):
                    _DISPATCHES.inc()
                    _LATENCY.observe(0.001)
            """,
            "RL006",
        )
        assert findings == []

    def test_flags_metric_aggregation_in_reactor_code(self):
        # value()/snapshot() merge the per-thread cells under the instrument
        # lock — that side of a metric has no place on the reactor thread.
        findings = findings_for(
            """
            from repro.obs.metrics import counter

            from repro.messaging.reactor import reactor_only

            _DISPATCHES = counter("repro.reactor.dispatches")

            class Loop:
                @reactor_only
                def _pump(self):
                    return _DISPATCHES.value()
            """,
            "RL006",
        )
        assert rules_of(findings) == ["RL006"]
        assert "metric aggregation" in findings[0].message

    def test_flags_histogram_percentile_on_instance_attr(self):
        # Instance-held instruments resolve through the class symbol table
        # (annotation or constructor assignment), same as locks and queues.
        findings = findings_for(
            """
            from repro.obs.metrics import Histogram

            from repro.messaging.reactor import reactor_only

            class Loop:
                def __init__(self):
                    self._latency = Histogram("repro.reactor.dispatch_seconds")

                @reactor_only
                def _pump(self):
                    self._latency.observe(0.001)
                    return self._latency.percentile(0.99)
            """,
            "RL006",
        )
        assert rules_of(findings) == ["RL006"]
        assert ".percentile()" in findings[0].message

    def test_metric_aggregation_off_reactor_is_clean(self):
        # Aggregation is fine anywhere else; only reactor-affine functions
        # are held to the non-blocking recording set.
        findings = findings_for(
            """
            from repro.obs.metrics import counter

            _DISPATCHES = counter("repro.reactor.dispatches")

            class Reporter:
                def snapshot(self):
                    return _DISPATCHES.value()
            """,
            "RL006",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL007 — check-then-act
# ---------------------------------------------------------------------------


class TestCheckThenAct:
    def test_flags_membership_test_then_mutation(self):
        findings = findings_for(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def put(self, key, value):
                    if key not in self._cache:
                        self._cache[key] = value
            """,
            "RL007",
        )
        assert rules_of(findings) == ["RL007"]
        assert "not atomic" in findings[0].message

    def test_flags_module_global_check_then_act(self):
        findings = findings_for(
            """
            import threading

            _LOCK = threading.Lock()
            _SEEN = set()

            def mark(item):
                if item not in _SEEN:
                    _SEEN.add(item)
            """,
            "RL007",
        )
        assert rules_of(findings) == ["RL007"]

    def test_check_then_act_under_lock_is_clean(self):
        findings = findings_for(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def put(self, key, value):
                    with self._lock:
                        if key not in self._cache:
                            self._cache[key] = value
            """,
            "RL007",
        )
        assert findings == []

    def test_single_threaded_class_is_clean(self):
        # No lock anywhere in the class: nothing marks it as shared between
        # threads, so check-then-act is ordinary (and correct) code.
        findings = findings_for(
            """
            class Memo:
                def __init__(self):
                    self._cache = {}

                def put(self, key, value):
                    if key not in self._cache:
                        self._cache[key] = value
            """,
            "RL007",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Finding identity
# ---------------------------------------------------------------------------

_RL005_SNIPPET = """
import threading

def start(target):
    return threading.Thread(target=target)
"""


class TestFindingIdentity:
    def test_ids_survive_unrelated_edits(self):
        before = findings_for(_RL005_SNIPPET, "RL005")
        shifted = "# a new leading comment\n\n" + textwrap.dedent(_RL005_SNIPPET)
        after = analyze_source(shifted, path="snippet.py", checks=["RL005"])
        assert [f.finding_id for f in before] == [f.finding_id for f in after]
        assert before[0].line != after[0].line  # the *line* did move

    def test_duplicate_sites_get_distinct_stable_ids(self):
        source = """
        import threading

        def start(target):
            first = threading.Thread(target=target)
            second = threading.Thread(target=target)
            return first, second
        """
        findings = findings_for(source, "RL005")
        assert len(findings) == 2
        assert findings[0].finding_id != findings[1].finding_id
        # Same ids again on a re-run: occurrence numbering is deterministic.
        again = findings_for(source, "RL005")
        assert [f.finding_id for f in findings] == [f.finding_id for f in again]

    def test_finding_id_shape(self):
        finding = findings_for(_RL005_SNIPPET, "RL005")[0]
        rule, path, qualname, fingerprint = finding.finding_id.split(":")
        assert rule == "RL005"
        assert path == "snippet.py"
        assert qualname == "start"
        assert len(fingerprint) == 12
        assert int(fingerprint, 16) >= 0  # hex


# ---------------------------------------------------------------------------
# Pragmas, baseline, CLI
# ---------------------------------------------------------------------------

_BAD_MODULE = """\
import threading


def start(target):
    return threading.Thread(target=target)
"""

_FIXED_MODULE = """\
import threading


def start(target):
    return threading.Thread(target=target, name="repro-pump", daemon=True)
"""


class TestPragmas:
    def test_inline_pragma_suppresses_the_finding(self):
        findings = findings_for(
            """
            import threading

            def start(target):
                return threading.Thread(target=target)  # reprolint: disable=RL005
            """,
            "RL005",
        )
        assert findings == []

    def test_pragma_is_rule_specific(self):
        findings = findings_for(
            """
            import threading

            def start(target):
                return threading.Thread(target=target)  # reprolint: disable=RL002
            """,
            "RL005",
        )
        assert rules_of(findings) == ["RL005"]


class TestBaseline:
    def test_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(_BAD_MODULE, encoding="utf-8")
        baseline = tmp_path / "reprolint.baseline"

        # First run: one unbaselined finding, exit 1.
        assert reprolint_main([str(bad)]) == 1

        # Adopt the current findings, then the same tree is green.
        assert reprolint_main([str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.is_file()
        assert reprolint_main([str(bad), "--baseline", str(baseline)]) == 0

        # Fix the code: still green, baseline entry now reported stale.
        bad.write_text(_FIXED_MODULE, encoding="utf-8")
        assert reprolint_main([str(bad), "--baseline", str(baseline)]) == 0

    def test_baseline_comments_and_partition(self, tmp_path):
        findings = analyze_source(_BAD_MODULE, path="bad.py", checks=["RL005"])
        baseline = tmp_path / "base.txt"
        write_baseline(baseline, findings)
        text = baseline.read_text(encoding="utf-8")
        assert text.startswith("# reprolint baseline")

        ids = load_baseline(baseline)
        assert ids == {f.finding_id for f in findings}

        new, baselined, stale = partition(findings, ids)
        assert new == [] and len(baselined) == len(findings) and stale == set()

        # A fixed tree leaves the id behind as stale.
        new, baselined, stale = partition([], ids)
        assert new == [] and baselined == [] and stale == ids

    def test_missing_baseline_file_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(_BAD_MODULE, encoding="utf-8")
        missing = tmp_path / "nope.baseline"
        assert reprolint_main([str(bad), "--baseline", str(missing)]) == 2


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(_FIXED_MODULE, encoding="utf-8")
        assert reprolint_main([str(clean)]) == 0

    def test_unknown_path_and_unknown_rule_are_usage_errors(self, tmp_path):
        assert reprolint_main([str(tmp_path / "missing_dir")]) == 2
        clean = tmp_path / "clean.py"
        clean.write_text(_FIXED_MODULE, encoding="utf-8")
        assert reprolint_main([str(clean), "--select", "RL999"]) == 2

    def test_select_narrows_checks(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(_BAD_MODULE, encoding="utf-8")
        assert reprolint_main([str(bad), "--select", "RL001"]) == 0
        assert reprolint_main([str(bad), "--select", "RL005"]) == 1

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        assert reprolint_main([str(broken)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_list_checks_covers_all_rules(self, capsys):
        assert reprolint_main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for rule in CHECKS:
            assert rule in out

    def test_json_output_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(_BAD_MODULE, encoding="utf-8")
        assert reprolint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version",
            "files",
            "findings",
            "baselined",
            "stale_baseline",
            "suppressed",
            "errors",
        }
        assert payload["version"] == 1
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "id",
            "rule",
            "path",
            "line",
            "qualname",
            "message",
            "source",
        }
        assert finding["rule"] == "RL005"
        assert finding["id"].startswith("RL005:")


# ---------------------------------------------------------------------------
# Meta: the committed tree is clean
# ---------------------------------------------------------------------------


@pytest.mark.analysis
class TestCommittedTreeIsClean:
    def test_src_has_no_findings(self):
        result = analyze_paths([str(SRC)])
        assert result.errors == []
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"reprolint findings in src/:\n{rendered}"

    def test_module_entry_point_is_clean(self):
        # The exact command CI runs; exercises __main__ + console wiring.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC)],
            cwd=str(REPO_ROOT),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout


# ---------------------------------------------------------------------------
# Regressions: real defects the analyzer found in src/
# ---------------------------------------------------------------------------


class TestAnalyzerFoundDefects:
    def test_remove_mailbox_listener_is_idempotent(self):
        # RL007 on consumer._wakeups: membership-test-then-remove was a
        # TOCTOU window between the reactor thread and training threads; the
        # fix removes unconditionally and swallows the miss.
        from repro.core.consumer import TensorConsumer

        consumer = object.__new__(TensorConsumer)
        consumer._wakeups = []
        wakeup = object()
        consumer._add_mailbox_listener(wakeup)
        consumer._remove_mailbox_listener(wakeup)
        consumer._remove_mailbox_listener(wakeup)  # double removal: no raise
        assert consumer._wakeups == []

    def test_remove_mailbox_listener_survives_racing_removers(self):
        from repro.core.consumer import TensorConsumer

        consumer = object.__new__(TensorConsumer)
        consumer._wakeups = []
        wakeups = [object() for _ in range(500)]
        for wakeup in wakeups:
            consumer._add_mailbox_listener(wakeup)

        errors = []

        def strip():
            try:
                for wakeup in wakeups:
                    consumer._remove_mailbox_listener(wakeup)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=strip, name=f"repro-test-strip-{i}", daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        assert consumer._wakeups == []
