"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import AckLedger, BatchBuffer, plan_slices
from repro.core.flexible_batch import recommend_producer_batch_size
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.data import BatchSampler, RandomSampler, SyntheticImageDataset
from repro.data.samplers import SequentialSampler
from repro.simulation import Simulator, Store
from repro.tensor import BatchPayload, SharedMemoryPool, TensorPayload, from_numpy
from repro.tensor.dtype import all_dtypes


# ---------------------------------------------------------------------------
# Flexible batching (Section 3.2.6): coverage, repetition bound, slice sizes.
# ---------------------------------------------------------------------------

@given(
    producer_batch=st.integers(min_value=1, max_value=512),
    consumer_batch=st.integers(min_value=1, max_value=512),
    offset=st.integers(min_value=0, max_value=1024),
)
@settings(max_examples=200, deadline=None)
def test_plan_slices_invariants(producer_batch, consumer_batch, offset):
    assume(consumer_batch <= producer_batch)
    plan = plan_slices(producer_batch, consumer_batch, offset=offset)
    # Every slice is exactly the consumer's batch size.
    assert all(spec.length == consumer_batch for spec in plan.slices)
    # Every producer-batch row is served at least once.
    assert plan.covered_rows().tolist() == list(range(producer_batch))
    # Repetition is bounded by consumer_batch - 1 (the paper's bound).
    assert 0 <= plan.repeated_rows <= consumer_batch - 1
    # Rows served = slices * batch size.
    assert plan.rows_served == len(plan.slices) * consumer_batch


@given(
    producer_batch=st.integers(min_value=2, max_value=512),
    consumer_batch=st.integers(min_value=1, max_value=512),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_shuffled_plan_is_a_permutation_of_the_ordered_plan(producer_batch, consumer_batch, seed):
    assume(consumer_batch <= producer_batch)
    ordered = plan_slices(producer_batch, consumer_batch)
    shuffled = plan_slices(producer_batch, consumer_batch, shuffle_seed=seed)
    assert sorted(s.start for s in ordered.slices) == sorted(s.start for s in shuffled.slices)
    assert shuffled.repeated_rows == ordered.repeated_rows


@given(batch_sizes=st.lists(st.integers(min_value=1, max_value=1024), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_recommended_producer_batch_bounds_repetition_below_half(batch_sizes):
    producer_batch = recommend_producer_batch_size(batch_sizes)
    assert producer_batch >= 2 * max(batch_sizes)
    for batch_size in batch_sizes:
        plan = plan_slices(producer_batch, batch_size)
        assert plan.repeated_share <= 0.5


# ---------------------------------------------------------------------------
# Payload round-trips: packing never corrupts data, handles stay small.
# ---------------------------------------------------------------------------

_dtype_names = st.sampled_from([dt.name for dt in all_dtypes() if dt.name != "bool"])


@given(
    rows=st.integers(min_value=1, max_value=16),
    cols=st.integers(min_value=1, max_value=16),
    dtype=_dtype_names,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=80, deadline=None)
def test_shared_payload_roundtrip_preserves_values(rows, cols, dtype, seed):
    rng = np.random.default_rng(seed)
    array = (rng.random((rows, cols)) * 100).astype(dtype)
    pool = SharedMemoryPool()
    try:
        shared = pool.share_tensor(from_numpy(array))
        payload = TensorPayload.from_shared(shared)
        rebuilt = payload.unpack(pool)
        np.testing.assert_array_equal(rebuilt.numpy(), array)
        assert payload.payload_nbytes <= 1024
    finally:
        pool.shutdown()


@given(
    rows=st.integers(min_value=1, max_value=16),
    dtype=_dtype_names,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=80, deadline=None)
def test_inline_payload_roundtrip_preserves_values(rows, dtype, seed):
    rng = np.random.default_rng(seed)
    array = (rng.random(rows) * 100).astype(dtype)
    payload = TensorPayload.inline(from_numpy(array))
    restored = TensorPayload.from_dict(payload.to_dict())
    np.testing.assert_array_equal(restored.unpack().numpy(), array)


# ---------------------------------------------------------------------------
# Acknowledgement ledger: memory is released exactly once, only when all
# consumers acknowledged, regardless of the ack order.
# ---------------------------------------------------------------------------

@given(
    n_consumers=st.integers(min_value=1, max_value=6),
    n_batches=st.integers(min_value=1, max_value=10),
    order_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_ledger_releases_every_batch_exactly_once(n_consumers, n_batches, order_seed):
    released = []
    ledger = AckLedger(release_callback=lambda record: released.append(record.key))
    consumers = [f"c{i}" for i in range(n_consumers)]
    acks = []
    for index in range(n_batches):
        ledger.publish((0, index), consumers, nbytes=1)
        acks.extend((consumer, (0, index)) for consumer in consumers)
    rng = np.random.default_rng(order_seed)
    rng.shuffle(acks)
    for consumer, key in acks:
        ledger.acknowledge(consumer, key)
    assert sorted(released) == [(0, index) for index in range(n_batches)]
    assert ledger.pending_batches == 0
    assert ledger.acks_received == n_consumers * n_batches


@given(
    n_consumers=st.integers(min_value=2, max_value=6),
    drop_index=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_ledger_drop_consumer_never_leaves_stuck_batches(n_consumers, drop_index):
    ledger = AckLedger()
    consumers = [f"c{i}" for i in range(n_consumers)]
    ledger.publish((0, 0), consumers)
    dropped = consumers[drop_index % n_consumers]
    for consumer in consumers:
        if consumer != dropped:
            ledger.acknowledge(consumer, (0, 0))
    ledger.drop_consumer(dropped)
    assert ledger.pending_batches == 0


# ---------------------------------------------------------------------------
# Batch buffer: drift never exceeds the configured capacity.
# ---------------------------------------------------------------------------

@given(
    capacity=st.integers(min_value=1, max_value=8),
    operations=st.lists(st.booleans(), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_batch_buffer_never_exceeds_capacity(capacity, operations):
    pool = SharedMemoryPool()
    try:
        buffer = BatchBuffer(capacity)
        counter = 0
        for is_put in operations:
            if is_put:
                if buffer.has_room:
                    tensor = pool.share_tensor(from_numpy(np.zeros(1, dtype=np.float32)))
                    buffer.put(BatchPayload.pack({"x": tensor}, batch_index=counter, epoch=0))
                    counter += 1
            else:
                buffer.get()
            assert 0 <= len(buffer) <= capacity
            assert buffer.high_water_mark <= capacity
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Samplers: random sampling is a permutation; batch sampler partitions it.
# ---------------------------------------------------------------------------

@given(
    size=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
    batch_size=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_batch_sampler_partitions_the_permutation(size, seed, batch_size):
    dataset = SyntheticImageDataset(size, payload_bytes=8)
    sampler = RandomSampler(dataset, seed=seed, reseed_each_epoch=False)
    batches = list(BatchSampler(sampler, batch_size))
    flattened = [index for batch in batches for index in batch]
    assert sorted(flattened) == list(range(size))
    assert all(len(batch) == batch_size for batch in batches[:-1])
    assert 1 <= len(batches[-1]) <= batch_size


@given(size=st.integers(min_value=1, max_value=100))
@settings(max_examples=50, deadline=None)
def test_sequential_sampler_is_identity(size):
    dataset = SyntheticImageDataset(size, payload_bytes=8)
    assert list(SequentialSampler(dataset)) == list(range(size))


# ---------------------------------------------------------------------------
# Rubberband policy: decisions are consistent with the window definition.
# ---------------------------------------------------------------------------

@given(
    window=st.floats(min_value=0.0, max_value=0.5),
    batches_per_epoch=st.integers(min_value=10, max_value=5000),
    join_at=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=150, deadline=None)
def test_rubberband_decision_consistency(window, batches_per_epoch, join_at):
    assume(join_at <= batches_per_epoch)
    policy = RubberbandPolicy(window, batches_per_epoch)
    decision = policy.decide("consumer", join_at)
    if join_at == 0:
        assert decision is JoinDecision.IMMEDIATE
    elif window > 0 and join_at < policy.window_batches:
        assert decision is JoinDecision.CATCH_UP
        assert policy.halting
    else:
        assert decision is JoinDecision.WAIT_FOR_NEXT_EPOCH
        assert not policy.halting


# ---------------------------------------------------------------------------
# Shared memory pool: retain/release sequences never release early or leak.
# ---------------------------------------------------------------------------

@given(extra_holds=st.integers(min_value=0, max_value=10))
@settings(max_examples=50, deadline=None)
def test_pool_refcounting_exactness(extra_holds):
    pool = SharedMemoryPool()
    try:
        tensor = pool.allocate_tensor((4,), initial_refcount=1)
        name = tensor.segment.name
        if extra_holds:
            pool.retain(name, extra_holds)
        for _ in range(extra_holds):
            assert pool.release(name) > 0
            assert pool.contains(name)
        assert pool.release(name) == 0
        assert not pool.contains(name)
        assert pool.bytes_in_flight == 0
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Simulation store: FIFO order is preserved for arbitrary interleavings.
# ---------------------------------------------------------------------------

@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.1)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items
