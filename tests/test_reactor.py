"""The per-process consumer reactor: shared subscriptions, timer wheel,
event-driven registration, shared TCP dials — and the refactor's headline
claim, O(1) repro-owned threads for K consumers x M shard members."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.core import ConsumerConfig, GroupConsumer
from repro.data import DataLoader
from repro.data.dataset import Dataset
from repro.messaging import InProcHub
from repro.messaging import endpoint as endpoints
from repro.messaging.message import Message, MessageKind
from repro.messaging.reactor import ConsumerReactor, get_reactor
from repro.messaging.transport import TcpClientEndpoint, TcpHub


class IndexDataset(Dataset):
    def __init__(self, n):
        self.n = n

    def __len__(self):
        return self.n

    def __getitem__(self, index):
        return {"index": np.array([index], dtype=np.int64)}


def index_loader(n=24, batch_size=4, **kwargs):
    return DataLoader(IndexDataset(n), batch_size=batch_size, **kwargs)


# ---------------------------------------------------------------------------
# timer wheel
# ---------------------------------------------------------------------------


class TestTimerWheel:
    def test_timer_fires_repeatedly_and_cancel_stops_it(self):
        reactor = ConsumerReactor(name="repro-reactor-test-timer")
        fired = []
        try:
            handle = reactor.every(0.01, lambda: fired.append(time.monotonic()))
            deadline = time.monotonic() + 2.0
            while len(fired) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(fired) >= 3
            handle.cancel()
            time.sleep(0.05)
            count_after_cancel = len(fired)
            time.sleep(0.1)
            assert len(fired) == count_after_cancel
        finally:
            reactor.shutdown()

    def test_rejects_nonpositive_interval(self):
        reactor = ConsumerReactor(name="repro-reactor-test-interval")
        try:
            with pytest.raises(ValueError):
                reactor.every(0, lambda: None)
        finally:
            reactor.shutdown()

    def test_one_timer_exception_does_not_kill_the_wheel(self):
        reactor = ConsumerReactor(name="repro-reactor-test-exc")
        fired = []
        try:
            def boom():
                fired.append("boom")
                raise RuntimeError("timer bug")

            reactor.every(0.01, boom)
            deadline = time.monotonic() + 2.0
            while len(fired) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            # The callback raised on its first fire and still got rescheduled.
            assert len(fired) >= 2
        finally:
            reactor.shutdown()


# ---------------------------------------------------------------------------
# shared subscriptions
# ---------------------------------------------------------------------------


class TestSharedSubscriptions:
    def test_n_subscribers_share_one_physical_endpoint(self):
        reactor = ConsumerReactor(name="repro-reactor-test-shared")
        hub = InProcHub()
        got_a, got_b = [], []
        try:
            sub_a = reactor.subscribe(
                hub, "chan/data", ("broadcast", "consumer/a"),
                lambda m: got_a.append(m),
            )
            sub_b = reactor.subscribe(
                hub, "chan/data", ("broadcast", "consumer/b"),
                lambda m: got_b.append(m),
            )
            # One physical endpoint on the hub, not two.
            assert hub.connected_count("chan/data") == 1
            hub.publish("chan/data", Message("broadcast", MessageKind.HEARTBEAT, "test"))
            hub.publish("chan/data", Message("consumer/a", MessageKind.HEARTBEAT, "test"))
            hub.publish("chan/data", Message("consumer/b", MessageKind.HEARTBEAT, "test"))
            deadline = time.monotonic() + 2.0
            while (len(got_a) < 2 or len(got_b) < 2) and time.monotonic() < deadline:
                time.sleep(0.01)
            # Each subscriber sees broadcast + its own topic, not the peer's.
            assert [m.topic for m in got_a] == ["broadcast", "consumer/a"]
            assert [m.topic for m in got_b] == ["broadcast", "consumer/b"]
            sub_a.unsubscribe()
            assert hub.connected_count("chan/data") == 1  # b still rides it
            sub_b.unsubscribe()
            assert hub.connected_count("chan/data") == 0
        finally:
            reactor.shutdown()

    def test_subscriber_handler_exception_does_not_starve_peers(self):
        reactor = ConsumerReactor(name="repro-reactor-test-handler-exc")
        hub = InProcHub()
        got = []
        try:
            def bad_handler(message):
                raise RuntimeError("consumer bug")

            reactor.subscribe(hub, "chan/data", ("broadcast",), bad_handler)
            reactor.subscribe(hub, "chan/data", ("broadcast",), got.append)
            hub.publish("chan/data", Message("broadcast", MessageKind.HEARTBEAT, "test"))
            deadline = time.monotonic() + 2.0
            while not got and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(got) == 1
        finally:
            reactor.shutdown()

    def test_get_reactor_is_a_singleton(self):
        assert get_reactor() is get_reactor()


# ---------------------------------------------------------------------------
# event-driven registration (no polling receive loop)
# ---------------------------------------------------------------------------


class TestEventDrivenRegistration:
    def test_wait_until_registered_wakes_on_reply(self):
        session = repro.serve(
            index_loader(n=8),
            address="inproc://reactor-reg",
            epochs=1,
            start=False,
        )
        try:
            consumer = session.consumer(ConsumerConfig(max_epochs=1))
            results = {}

            def wait():
                results["admitted"] = consumer.wait_until_registered(timeout=10.0)
                results["returned_at"] = time.monotonic()

            waiter = threading.Thread(target=wait, name="test-reg-waiter")
            waiter.start()
            time.sleep(0.1)
            assert "admitted" not in results  # genuinely blocked, not spinning
            started_at = time.monotonic()
            session.start()
            waiter.join(timeout=10.0)
            assert not waiter.is_alive()
            assert results["admitted"] == 0
            # Woken by the reactor-delivered REPLY event, promptly — not by
            # the tail end of a polling timeout.
            assert results["returned_at"] - started_at < 5.0
            list(consumer)  # drain so shutdown is clean
        finally:
            session.shutdown()

    def test_no_heartbeat_thread_per_consumer(self):
        session = repro.serve(
            index_loader(n=8),
            address="inproc://reactor-hb",
            epochs=1,
            start=False,
        )
        try:
            consumer = session.consumer(ConsumerConfig(max_epochs=1))
            names = [t.name for t in threading.enumerate()]
            assert "repro-heartbeat" not in names
            session.start()
            consumer.wait_until_registered(timeout=10.0)
            list(consumer)
        finally:
            session.shutdown()


# ---------------------------------------------------------------------------
# the scalability claim: K consumers x M members = O(1) repro threads
# ---------------------------------------------------------------------------


class TestConstantThreadCount:
    CONSUMERS = 32
    SHARDS = 4

    def test_32_consumers_on_4_shards_add_no_threads(self):
        session = repro.serve(
            index_loader(n=64, batch_size=4),
            address="inproc://reactor-32x4",
            shards=self.SHARDS,
            epochs=1,
            start=False,
        )
        try:
            # Baseline: the serving side's threads (producers, stage workers,
            # describe) plus whatever already lives in the process.
            before = set(threading.enumerate())
            consumers = [
                repro.attach(
                    "inproc://reactor-32x4",
                    consumer_id=f"fan{i}",
                    max_epochs=1,
                    interleave="any",
                )
                for i in range(self.CONSUMERS)
            ]
            assert all(isinstance(c, GroupConsumer) for c in consumers)
            counts = [0] * self.CONSUMERS
            errors = []

            def train(i, consumer):
                try:
                    for _batch in consumer:
                        counts[i] += 1
                except BaseException as exc:
                    errors.append(exc)

            trainers = [
                threading.Thread(
                    target=train, args=(i, c), name=f"test-fanout-trainer-{i}"
                )
                for i, c in enumerate(consumers)
            ]
            session.start()
            for t in trainers:
                t.start()
            # Sample the thread population for the whole run: any thread the
            # attach/iterate path spawns would show up here.
            new_threads = set()
            while any(t.is_alive() for t in trainers):
                new_threads |= {
                    t for t in threading.enumerate()
                    if t not in before and not t.name.startswith("test-")
                }
                time.sleep(0.01)
            for t in trainers:
                t.join(timeout=10.0)
            assert not errors, errors
            new_names = {t.name for t in new_threads}
            # The serving side's fixed thread set (spawned by session.start(),
            # independent of consumer count) is expected; the attach/iterate
            # side may add at most the one shared reactor.  32 consumers x 4
            # members previously cost 32 pump loops plus 32*4 feeder threads.
            serving_side = {"repro-session-describe"} | {
                f"repro-producer-shard{k}" for k in range(self.SHARDS)
            }
            attach_side = {
                name
                for name in new_names - serving_side
                if not name.endswith("-stage")
                and not name.startswith("repro-loader-worker-")
            }
            assert attach_side <= {"repro-reactor"}, (
                f"attach/iterate spawned unexpected threads: {sorted(attach_side)}"
            )
            # And the data still arrived: every consumer saw the full epoch.
            assert all(count == 16 for count in counts), counts
        finally:
            session.shutdown()


# ---------------------------------------------------------------------------
# acked subscribe: a late topic is live before subscribe() returns
# ---------------------------------------------------------------------------


class TestAckedSubscribe:
    def test_subscribe_returns_only_after_prefix_is_live(self):
        """Adding a topic to an existing endpoint (how a second consumer
        joins a shared channel) must be effective broker-side before
        ``subscribe`` returns: the consumer's HELLO travels on a *different*
        socket, so without the confirmation the producer could admit it and
        publish to the new topic — a rubberband catch-up replay, most
        visibly — before the broker ever processed the subscribe."""
        hub = TcpHub()
        try:
            endpoint = TcpClientEndpoint(
                hub.host, hub.port, op="connect",
                address="chan/data", subscriptions=["a"],
            )
            try:
                # Stall the broker's serve thread: this big frame is queued
                # ahead of the subscribe on the same connection, so the
                # subscribe cannot have been processed when it returns —
                # unless it genuinely waited for the confirmation.
                endpoint.send_publish(
                    "void/data",
                    Message("x", MessageKind.HEARTBEAT, "test", body=b"\0" * (32 << 20)),
                )
                endpoint.subscribe("b")
                # Publish straight into the broker's routing hub: routing is
                # synchronous server-side, so this reaches us only if the
                # prefix was applied before subscribe() returned.
                hub.inner_hub.publish(
                    "chan/data", Message("b", MessageKind.HEARTBEAT, "test")
                )
                assert endpoint.receive(timeout=5.0).topic == "b"
            finally:
                endpoint.close()
        finally:
            hub.close()


# ---------------------------------------------------------------------------
# shared TCP connection table
# ---------------------------------------------------------------------------


class TestSharedTcpDial:
    def test_two_attaches_share_one_broker_connection(self):
        session = repro.serve(
            index_loader(n=8),
            address="tcp://127.0.0.1:0",
            epochs=1,
            start=False,
        )
        try:
            first = endpoints.connect(session.address)
            second = endpoints.connect(session.address)
            try:
                # Same refcounted TcpHubClient underneath both endpoints.
                assert first.hub is second.hub
                assert first.pool is second.pool
                stats = get_reactor().stats()
                assert stats["tcp_client_refs"] >= 2
            finally:
                first.release()
                second.release()
            # The last release closes the shared client.
            assert first.hub.closed
        finally:
            session.shutdown()
