"""Tests for the ``tcp://`` transport: cross-process serve/attach, broker
robustness (duplicate binds reply with an error instead of hanging the
client), port release on shutdown, and regression tests for the
producer/ledger/hub lifecycle fixes that shipped with it."""

import multiprocessing
import socket
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig, ProducerConfig
from repro.core.ack_ledger import AckLedger
from repro.core.consumer import TensorConsumer
from repro.core.producer import TensorProducer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.messaging import InProcHub, Message, MessageKind
from repro.messaging.endpoint import TcpTransport, connect
from repro.messaging.errors import (
    AddressError,
    AddressInUseError,
    AddressNotServedError,
    MessagingError,
)
from repro.messaging.sockets import PubSocket, PushSocket, SubSocket
from repro.messaging.transport import TcpClientEndpoint, TcpHub, channel_key


def tiny_loader(size=24, batch_size=4):
    dataset = SyntheticImageDataset(size, image_size=8, payload_bytes=16)
    pipeline = Compose([DecodeJpeg(height=8, width=8), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=batch_size, transform=pipeline)


# ---------------------------------------------------------------------------
# address plumbing
# ---------------------------------------------------------------------------


class TestTcpAddresses:
    def test_tcp_scheme_registered_by_default(self):
        assert "tcp" in repro.available_schemes()

    def test_channel_key_canonicalises_authority(self):
        assert channel_key("tcp://127.0.0.1:5555/data") == "/data"
        assert channel_key("tcp://localhost:5555/data") == "/data"
        assert channel_key("plain-address/data") == "plain-address/data"

    @pytest.mark.parametrize("bad", ["tcp://hostonly", "tcp://:5555", "tcp://h:not-a-port", "tcp://h:70000"])
    def test_malformed_locators_rejected(self, bad):
        with pytest.raises(AddressError):
            TcpTransport().bind(bad)

    def test_connect_to_port_zero_rejected(self):
        with pytest.raises(AddressError, match="port 0"):
            TcpTransport().connect("tcp://127.0.0.1:0")

    def test_connect_to_dead_broker_is_not_served(self):
        # Grab a port that is guaranteed free, then dial it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(AddressNotServedError):
            connect(f"tcp://127.0.0.1:{port}")


# ---------------------------------------------------------------------------
# serve/attach round trip (single process, real TCP + posix shared memory)
# ---------------------------------------------------------------------------


class TestTcpRoundTrip:
    def test_bind_attach_round_trip_with_port_autoassign(self):
        session = repro.serve(
            tiny_loader(size=24), address="tcp://127.0.0.1:0", epochs=1, start=False
        )
        try:
            # Port 0 was resolved and surfaced through producer.address.
            assert session.producer.address == session.address
            assert not session.address.endswith(":0")
            # Bypass the in-process session directory so the consumer really
            # dials the broker and attaches segments by name.
            consumer = TensorConsumer(
                address=session.address,
                config=ConsumerConfig(max_epochs=1, receive_timeout=20),
            )
            session.start()
            batches = 0
            all_shared = True
            for batch in consumer:
                batches += 1
                all_shared = all_shared and all(t.is_shared for t in batch.values())
            consumer.close()
            assert batches == 6
            assert all_shared
        finally:
            session.shutdown()
        assert session.pool.live_segments == 0

    def test_duplicate_tcp_bind_raises_address_in_use(self):
        session = repro.serve(
            tiny_loader(size=8), address="tcp://127.0.0.1:0", start=False
        )
        try:
            with pytest.raises(AddressInUseError):
                repro.serve(tiny_loader(size=8), address=session.address, start=False)
        finally:
            session.shutdown()


# ---------------------------------------------------------------------------
# broker robustness
# ---------------------------------------------------------------------------


class TestBrokerRobustness:
    def test_duplicate_channel_bind_replies_error_instead_of_hanging(self):
        hub = TcpHub()
        try:
            first = TcpClientEndpoint(hub.host, hub.port, op="bind", address="/control")
            started = time.monotonic()
            with pytest.raises(MessagingError, match="already bound"):
                TcpClientEndpoint(hub.host, hub.port, op="bind", address="/control")
            # The error came back as a reply, not a client-side timeout/hang.
            assert time.monotonic() - started < 5.0
            first.close()
        finally:
            hub.close()

    def test_rejected_bind_leaves_connection_usable(self):
        hub = TcpHub()
        try:
            holder = TcpClientEndpoint(hub.host, hub.port, op="bind", address="/x")
            with pytest.raises(MessagingError):
                TcpClientEndpoint(hub.host, hub.port, op="bind", address="/x")
            holder.close()
            time.sleep(0.1)
            # The address is free again once the holder disconnected.
            rebound = TcpClientEndpoint(hub.host, hub.port, op="bind", address="/x")
            rebound.close()
        finally:
            hub.close()

    def test_push_to_unbound_address_does_not_kill_connection(self):
        hub = TcpHub()
        try:
            sender = TcpClientEndpoint(hub.host, hub.port, op="open")
            message = Message(topic="", kind=MessageKind.ACK, sender="t", body=1)
            sender.send_push("/nowhere", message)  # swallowed broker-side
            time.sleep(0.1)
            # The same connection still serves a successful bind afterwards.
            bound = TcpClientEndpoint(hub.host, hub.port, op="bind", address="/alive")
            sender.send_push("/alive", message)
            assert bound.receive(timeout=5).body == 1
            bound.close()
            sender.close()
        finally:
            hub.close()

    def test_broker_shutdown_releases_port(self):
        session = repro.serve(
            tiny_loader(size=8), address="tcp://127.0.0.1:0", start=False
        )
        port = int(session.address.rsplit(":", 1)[1])
        session.shutdown()
        # The port is bindable again immediately after shutdown.
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", port))
        probe.close()

    def test_same_port_reservable_after_session_with_traffic(self):
        """close() must wake the blocked accept thread, or the kernel keeps
        the listening socket alive and re-binding the port fails."""
        session = repro.serve(
            tiny_loader(size=8), address="tcp://127.0.0.1:0", epochs=1, start=False
        )
        address = session.address
        consumer = TensorConsumer(
            address=address, config=ConsumerConfig(max_epochs=1, receive_timeout=20)
        )
        session.start()
        assert sum(1 for _ in consumer) == 2
        consumer.close()
        session.shutdown()
        # Re-serving (bind + listen, not just a bind probe) must succeed.
        rebound = repro.serve(tiny_loader(size=8), address=address, start=False)
        assert rebound.address == address
        rebound.shutdown()

    def test_dead_broker_send_raises_messaging_error(self):
        hub = TcpHub()
        sender = TcpClientEndpoint(hub.host, hub.port, op="open")
        hub.close()
        time.sleep(0.1)
        message = Message(topic="", kind=MessageKind.ACK, sender="t", body=1)
        with pytest.raises(MessagingError):
            # May take one send for the OS to report the dead peer.
            for _ in range(20):
                sender.send_push("/anywhere", message)
                time.sleep(0.05)
        sender.close()


# ---------------------------------------------------------------------------
# regression: replay-window ledger accounting (AckLedger.add_waiter)
# ---------------------------------------------------------------------------


class TestReplayWindowLedgerAccounting:
    def test_add_waiter_updates_outstanding_index(self):
        ledger = AckLedger()
        ledger.publish((0, 0), ["c1"], segment_names=("seg",), nbytes=64)
        record = ledger.add_waiter((0, 0), "late-joiner")
        assert "late-joiner" in record.waiting_on
        # The per-consumer outstanding index saw the waiter too — this is
        # what raw record mutation used to miss.
        assert ledger.outstanding_for("late-joiner") == 1
        assert not ledger.can_publish_to("late-joiner", buffer_size=1)

    def test_add_waiter_acknowledge_releases(self):
        released = []
        ledger = AckLedger(release_callback=lambda record: released.append(record.key))
        ledger.publish((0, 1), ["c1"])
        ledger.add_waiter((0, 1), "c2")
        assert ledger.acknowledge("c1", (0, 1)) is None
        assert ledger.acknowledge("c2", (0, 1)) is not None
        assert released == [(0, 1)]
        assert ledger.outstanding_for("c2") == 0

    def test_add_waiter_on_released_batch_raises(self):
        ledger = AckLedger()
        ledger.publish((0, 2), ["c1"])
        ledger.acknowledge("c1", (0, 2))
        with pytest.raises(KeyError):
            ledger.add_waiter((0, 2), "c2")

    def test_replay_window_flows_through_ledger(self):
        """A rubberbanded late joiner's replayed batches are tracked as
        outstanding, so flow control sees them."""
        hub = InProcHub()
        producer = TensorProducer(
            tiny_loader(size=100, batch_size=4),
            hub=hub,
            config=ProducerConfig(epochs=1, rubberband_fraction=0.5),
        )
        first = TensorConsumer(hub=hub, pool=producer.pool,
                               config=ConsumerConfig(consumer_id="first", max_epochs=1))
        iterator = iter(producer)
        next(iterator)  # publish one batch into the rubberband window
        late = TensorConsumer(hub=hub, pool=producer.pool,
                              config=ConsumerConfig(consumer_id="late", max_epochs=1))
        producer._process_control()
        assert producer.ledger.outstanding_for("late") > 0
        producer.stop()
        for consumer in (first, late):
            consumer.close()
        producer.join(timeout=5)


# ---------------------------------------------------------------------------
# regression: hub endpoint pruning
# ---------------------------------------------------------------------------


class TestHubEndpointPruning:
    def test_publish_purges_closed_endpoints(self):
        hub = InProcHub()
        pub = PubSocket(hub, "data")
        keep = SubSocket(hub, "data")
        for _ in range(5):
            # close() without disconnect(), as a dying consumer would.
            hub.connect("data").close()
        assert pub.send(MessageKind.BATCH, body=1) == 1
        assert len(hub._connected["data"]) == 1  # the closed ones are gone
        assert keep.recv(timeout=1).body == 1

    def test_connect_purges_closed_endpoints(self):
        hub = InProcHub()
        hub.connect("data").close()
        hub.connect("data").close()
        live = hub.connect("data")
        assert hub._connected["data"] == [live]

    def test_publish_drops_empty_address_entry(self):
        hub = InProcHub()
        hub.connect("data").close()
        hub.publish("data", Message(topic="", kind=MessageKind.BATCH, sender="p"))
        assert "data" not in hub._connected

    def test_connect_time_subscriptions_are_atomic(self):
        hub = InProcHub()
        endpoint = hub.connect("data", subscriptions=("broadcast", "consumer/c1"))
        assert endpoint.subscriptions == {"broadcast", "consumer/c1"}


# ---------------------------------------------------------------------------
# regression: phantom heartbeats and flexible-mode epoch drift
# ---------------------------------------------------------------------------


class TestPhantomHeartbeats:
    def test_stray_sender_not_tracked_as_live_peer(self):
        hub = InProcHub()
        producer = TensorProducer(tiny_loader(size=8), hub=hub,
                                  config=ProducerConfig(epochs=1))
        push = PushSocket(hub, producer.config.control_address)
        push.send(MessageKind.HEARTBEAT, body={"consumer_id": "ghost"})
        push.send(MessageKind.ACK, body={"consumer_id": "ghost", "epoch": 0, "batch_index": 0})
        producer._process_control()
        assert producer._heartbeats.live_consumers() == []
        producer.stop()
        producer.join(timeout=5)

    def test_registered_consumer_still_beats(self):
        hub = InProcHub()
        producer = TensorProducer(tiny_loader(size=8), hub=hub,
                                  config=ProducerConfig(epochs=1))
        consumer = TensorConsumer(hub=hub, pool=producer.pool,
                                  config=ConsumerConfig(consumer_id="real", max_epochs=1))
        producer._process_control()
        assert producer._heartbeats.live_consumers() == ["real"]
        beats_before = producer._heartbeats._peers["real"].beats_received
        PushSocket(hub, producer.config.control_address).send(
            MessageKind.HEARTBEAT, body={"consumer_id": "real"}
        )
        producer._process_control()
        assert producer._heartbeats._peers["real"].beats_received > beats_before
        consumer.close()
        producer._process_control()
        producer.stop()
        producer.join(timeout=5)

    def test_rejected_duplicate_hello_not_tracked(self):
        hub = InProcHub()
        producer = TensorProducer(tiny_loader(size=8), hub=hub,
                                  config=ProducerConfig(epochs=1))
        push = PushSocket(hub, producer.config.control_address)
        push.send(MessageKind.HELLO, body={"consumer_id": "worker", "token": "t1"})
        producer._process_control()
        monitor = producer._heartbeats
        first_seen = monitor._peers["worker"].beats_received
        # A different instance squatting on the same id is rejected and must
        # not refresh (or create) liveness for anyone.
        push.send(MessageKind.HELLO, body={"consumer_id": "worker", "token": "t2"})
        producer._process_control()
        assert monitor.live_consumers() == ["worker"]
        assert monitor._peers["worker"].beats_received == first_seen
        producer.stop()
        producer.join(timeout=5)


class TestFlexibleEpochDrift:
    def test_publish_seq_resets_each_epoch(self):
        hub = InProcHub()
        producer = TensorProducer(
            tiny_loader(size=16, batch_size=4),
            hub=hub,
            config=ProducerConfig(epochs=2, flexible_batching=True,
                                  producer_batch_size=8),
        )
        indices_by_epoch = {}
        spy = SubSocket(hub, producer.config.data_address, topics=("",))
        consumer = TensorConsumer(
            hub=hub, pool=producer.pool,
            config=ConsumerConfig(consumer_id="c", batch_size=4, max_epochs=2),
        )
        runner = threading.Thread(target=lambda: (list(producer), producer.join()))
        runner.start()
        batches = sum(1 for _ in consumer)
        runner.join(timeout=30)
        assert batches == 8
        while True:
            message = spy.try_recv()
            if message is None:
                break
            if message.kind is MessageKind.BATCH:
                indices_by_epoch.setdefault(message.body.epoch, []).append(
                    message.body.batch_index
                )
        assert set(indices_by_epoch) == {0, 1}
        # Without the reset, epoch 1 indices continued from epoch 0's.
        assert min(indices_by_epoch[0]) == min(indices_by_epoch[1]) == 1
        consumer.close()


# ---------------------------------------------------------------------------
# cross-process end-to-end (marked so CI can fence it with a timeout)
# ---------------------------------------------------------------------------


def _remote_trainer(address, result_queue):
    """Runs in a separate OS process: attach by address, train two epochs."""
    import repro as repro_child

    consumer = repro_child.attach(
        address, consumer_id="remote-trainer", max_epochs=2, receive_timeout=30
    )
    batches = 0
    all_shared = True
    total = 0.0
    for batch in consumer:
        batches += 1
        all_shared = all_shared and all(t.is_shared for t in batch.values())
        total += float(batch["image"].numpy().sum())
    consumer.close()
    result_queue.put((batches, all_shared, total))


@pytest.mark.multiprocess
class TestCrossProcess:
    def test_two_process_training_two_epochs_zero_copy(self):
        session = repro.serve(
            tiny_loader(size=24), address="tcp://127.0.0.1:0", epochs=2, start=False
        )
        result_queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_remote_trainer, args=(session.address, result_queue)
        )
        child.start()
        try:
            session.start()
            batches, all_shared, total = result_queue.get(timeout=60)
        finally:
            child.join(timeout=30)
            if child.is_alive():
                child.terminate()
            session.shutdown()
        assert child.exitcode == 0
        assert batches == 12  # 6 batches/epoch x 2 epochs
        assert all_shared  # posix shared-memory views, not pickled copies
        assert total != 0.0  # the child really read tensor bytes
        assert session.producer.epochs_completed == 2
        assert session.pool.live_segments == 0

    def test_forked_child_does_not_see_parent_session_directory(self):
        from repro.core.session import SharedLoaderSession

        session = repro.serve(
            tiny_loader(size=8), address="tcp://127.0.0.1:0", start=False
        )
        try:
            # In the serving process the directory finds the session...
            assert SharedLoaderSession.at(session.address) is session

            def probe(address, queue):
                from repro.core.session import SharedLoaderSession as S

                queue.put(S.at(address) is None)

            queue = multiprocessing.Queue()
            child = multiprocessing.Process(target=probe, args=(session.address, queue))
            child.start()
            # ...but a forked child must fall through to a real transport
            # connect instead of the parent's dead in-process entry.
            assert queue.get(timeout=30) is True
            child.join(timeout=10)
        finally:
            session.shutdown()
