"""Unit tests for the CoorDL and Joader baseline pipelines."""

import pytest

from repro.baselines import ConventionalLoading, CoorDLLoading, JoaderLoading
from repro.hardware import A100_SERVER, H100_SERVER, Machine
from repro.simulation import Simulator
from repro.training import CollocationRunner, SharingStrategy, TrainingWorkload


class TestCoorDL:
    def test_rejects_two_models_on_one_gpu(self):
        sim = Simulator()
        machine = Machine(sim, A100_SERVER)
        pipeline = CoorDLLoading(sim, machine)
        pipeline.attach(TrainingWorkload(model="resnet18", gpu_index=0, name="a"))
        with pytest.raises(ValueError):
            pipeline.attach(TrainingWorkload(model="resnet18", gpu_index=0, name="b"))

    def test_requires_attached_workloads(self):
        sim = Simulator()
        machine = Machine(sim, A100_SERVER)
        with pytest.raises(RuntimeError):
            CoorDLLoading(sim, machine).start(duration_s=1.0)

    def test_shared_loading_keeps_per_model_throughput(self):
        def run(strategy, degree):
            return CollocationRunner(
                A100_SERVER,
                strategy=strategy,
                total_loader_workers=4,
                duration_s=40,
                warmup_s=8,
            ).run(
                [
                    TrainingWorkload(model="resnet18", gpu_index=i, batch_size=512, name=f"r{i}")
                    for i in range(degree)
                ]
            )

        single = run(SharingStrategy.COORDL, 1)
        quad = run(SharingStrategy.COORDL, 4)
        baseline_quad = run(SharingStrategy.NONE, 4)
        # CoorDL keeps per-model throughput roughly flat while the baseline
        # with the same worker budget collapses (Figure 14b).
        assert quad.per_model_samples_per_second > 0.9 * single.per_model_samples_per_second
        assert baseline_quad.per_model_samples_per_second < 0.4 * single.per_model_samples_per_second

    def test_cpu_grows_with_collocation_unlike_tensorsocket(self):
        def run(strategy, degree):
            return CollocationRunner(
                A100_SERVER,
                strategy=strategy,
                total_loader_workers=4,
                duration_s=40,
                warmup_s=8,
            ).run(
                [
                    TrainingWorkload(model="resnet18", gpu_index=i, batch_size=512, name=f"r{i}")
                    for i in range(degree)
                ]
            )

        coordl_ratio = (
            run(SharingStrategy.COORDL, 4).cpu_utilization_percent
            / run(SharingStrategy.COORDL, 1).cpu_utilization_percent
        )
        ts_ratio = (
            run(SharingStrategy.TENSORSOCKET, 4).cpu_utilization_percent
            / run(SharingStrategy.TENSORSOCKET, 1).cpu_utilization_percent
        )
        assert coordl_ratio > 1.25
        assert ts_ratio < 1.15
        assert coordl_ratio > ts_ratio


class TestJoader:
    def test_requires_attached_workloads(self):
        sim = Simulator()
        machine = Machine(sim, H100_SERVER)
        with pytest.raises(RuntimeError):
            JoaderLoading(sim, machine).start(duration_s=1.0)

    def test_dispatch_cost_grows_with_job_count(self):
        def run(degree):
            return CollocationRunner(
                H100_SERVER,
                strategy=SharingStrategy.JOADER,
                total_loader_workers=8,
                duration_s=40,
                warmup_s=8,
            ).run(
                [
                    TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}")
                    for i in range(degree)
                ]
            )

        one = run(1).per_model_samples_per_second
        four = run(4).per_model_samples_per_second
        eight = run(8).per_model_samples_per_second
        assert one > four > eight
        # Fitted shape from Figure 15: roughly 1 / (d0 + d1 * k).
        assert four == pytest.approx(one * (1 / (0.66 + 0.35 * 4)) / (1 / (0.66 + 0.35)), rel=0.25)

    def test_joader_beats_baseline_but_loses_to_tensorsocket(self):
        def run(strategy):
            return CollocationRunner(
                H100_SERVER,
                strategy=strategy,
                total_loader_workers=8,
                duration_s=40,
                warmup_s=8,
            ).run(
                [
                    TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}")
                    for i in range(4)
                ]
            )

        baseline = run(SharingStrategy.NONE).per_model_samples_per_second
        joader = run(SharingStrategy.JOADER).per_model_samples_per_second
        tensorsocket = run(SharingStrategy.TENSORSOCKET).per_model_samples_per_second
        assert baseline < joader < tensorsocket


class TestConventionalAlias:
    def test_conventional_is_the_training_pipeline_class(self):
        from repro.training.loading import ConventionalLoading as TrainingConventional

        assert ConventionalLoading is TrainingConventional
