"""Unit tests for :mod:`repro.data.samplers`.

The samplers were previously only exercised incidentally through the loader
tests; sharding makes their exact semantics (drop_last edges, seeding,
set_epoch, disjoint shard arithmetic) load-bearing.
"""

import pytest

from repro.data.samplers import (
    BatchSampler,
    RandomSampler,
    SequentialSampler,
    ShardSampler,
    SubsetSampler,
)


class FakeSource:
    def __init__(self, n):
        self.n = n

    def __len__(self):
        return self.n


# ---------------------------------------------------------------------------
# BatchSampler drop_last edges
# ---------------------------------------------------------------------------


class TestBatchSampler:
    def test_even_split(self):
        batches = list(BatchSampler(SequentialSampler(FakeSource(8)), 4))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_trailing_partial_kept_by_default(self):
        batches = list(BatchSampler(SequentialSampler(FakeSource(10)), 4))
        assert batches[-1] == [8, 9]
        assert len(batches) == 3

    def test_trailing_partial_dropped_with_drop_last(self):
        sampler = BatchSampler(SequentialSampler(FakeSource(10)), 4, drop_last=True)
        batches = list(sampler)
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert len(sampler) == 2

    def test_len_matches_iteration(self):
        for n in (0, 1, 3, 4, 5, 8, 9):
            for drop_last in (False, True):
                sampler = BatchSampler(
                    SequentialSampler(FakeSource(n)), 4, drop_last=drop_last
                )
                assert len(sampler) == len(list(sampler)), (n, drop_last)

    def test_batch_smaller_than_batch_size(self):
        batches = list(BatchSampler(SequentialSampler(FakeSource(3)), 8))
        assert batches == [[0, 1, 2]]
        assert list(BatchSampler(SequentialSampler(FakeSource(3)), 8, drop_last=True)) == []

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchSampler(SequentialSampler(FakeSource(4)), 0)


# ---------------------------------------------------------------------------
# SubsetSampler
# ---------------------------------------------------------------------------


class TestSubsetSampler:
    def test_preserves_order_and_duplicates(self):
        sampler = SubsetSampler([5, 1, 5, 3])
        assert list(sampler) == [5, 1, 5, 3]
        assert len(sampler) == 4

    def test_coerces_to_int(self):
        import numpy as np

        sampler = SubsetSampler(np.array([2, 0], dtype=np.int64))
        indices = list(sampler)
        assert indices == [2, 0]
        assert all(type(i) is int for i in sampler.indices)

    def test_empty(self):
        sampler = SubsetSampler([])
        assert list(sampler) == []
        assert len(sampler) == 0


# ---------------------------------------------------------------------------
# RandomSampler seeding
# ---------------------------------------------------------------------------


class TestRandomSamplerSeeding:
    def test_same_seed_same_first_epoch(self):
        a = RandomSampler(FakeSource(50), seed=9)
        b = RandomSampler(FakeSource(50), seed=9)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = RandomSampler(FakeSource(50), seed=1)
        b = RandomSampler(FakeSource(50), seed=2)
        assert list(a) != list(b)

    def test_reseed_each_epoch_advances(self):
        sampler = RandomSampler(FakeSource(50), seed=4)
        assert list(sampler) != list(sampler)

    def test_no_reseed_repeats(self):
        sampler = RandomSampler(FakeSource(50), seed=4, reseed_each_epoch=False)
        assert list(sampler) == list(sampler)

    def test_set_epoch_pins_permutation(self):
        a = RandomSampler(FakeSource(50), seed=4)
        b = RandomSampler(FakeSource(50), seed=4)
        list(a)  # advance a past epoch 0
        a.set_epoch(0)
        b.set_epoch(0)
        assert list(a) == list(b)

    def test_epoch_is_permutation(self):
        sampler = RandomSampler(FakeSource(31), seed=0)
        assert sorted(sampler) == list(range(31))

    def test_replacement_and_num_samples(self):
        sampler = RandomSampler(
            FakeSource(10), seed=0, replacement=True, num_samples=25
        )
        indices = list(sampler)
        assert len(indices) == len(sampler) == 25
        assert all(0 <= i < 10 for i in indices)


# ---------------------------------------------------------------------------
# ShardSampler
# ---------------------------------------------------------------------------


class TestShardSampler:
    def _shards(self, base_factory, num_shards, mode, epoch=None):
        shards = [
            ShardSampler(
                base_factory(), num_shards=num_shards, shard_index=k, mode=mode
            )
            for k in range(num_shards)
        ]
        if epoch is not None:
            for shard in shards:
                shard.set_epoch(epoch)
        return shards

    @pytest.mark.parametrize("mode", ["strided", "contiguous"])
    @pytest.mark.parametrize("n,num_shards", [(24, 3), (23, 3), (5, 4), (3, 4), (10, 1)])
    def test_disjoint_exact_cover(self, mode, n, num_shards):
        shards = self._shards(
            lambda: SequentialSampler(FakeSource(n)), num_shards, mode
        )
        per_shard = [list(s) for s in shards]
        flat = [i for shard in per_shard for i in shard]
        assert sorted(flat) == list(range(n))
        for shard, indices in zip(shards, per_shard):
            assert len(shard) == len(indices)

    def test_strided_round_robin_positions(self):
        shards = self._shards(lambda: SequentialSampler(FakeSource(7)), 3, "strided")
        assert [list(s) for s in shards] == [[0, 3, 6], [1, 4], [2, 5]]

    def test_contiguous_blocks(self):
        shards = self._shards(lambda: SequentialSampler(FakeSource(7)), 3, "contiguous")
        assert [list(s) for s in shards] == [[0, 1, 2], [3, 4, 5], [6]]

    def test_shards_over_random_base_cover_with_same_epoch(self):
        shards = self._shards(
            lambda: RandomSampler(FakeSource(29), seed=3), 4, "strided", epoch=2
        )
        flat = [i for s in shards for i in s]
        assert sorted(flat) == list(range(29))

    def test_set_epoch_forwards_to_base(self):
        base = RandomSampler(FakeSource(20), seed=1)
        shard = ShardSampler(base, num_shards=2, shard_index=0)
        shard.set_epoch(5)
        assert base._epoch == 5

    def test_set_epoch_ignored_for_unseeded_base(self):
        shard = ShardSampler(
            SequentialSampler(FakeSource(4)), num_shards=2, shard_index=0
        )
        shard.set_epoch(3)  # must not raise
        assert list(shard) == [0, 2]

    def test_same_epoch_same_partition_across_instances(self):
        first = self._shards(
            lambda: RandomSampler(FakeSource(40), seed=7), 2, "strided", epoch=1
        )
        second = self._shards(
            lambda: RandomSampler(FakeSource(40), seed=7), 2, "strided", epoch=1
        )
        assert [list(s) for s in first] == [list(s) for s in second]

    def test_different_epochs_reshuffle(self):
        shard_a = ShardSampler(
            RandomSampler(FakeSource(40), seed=7), num_shards=2, shard_index=0
        )
        shard_a.set_epoch(0)
        epoch0 = list(shard_a)
        shard_a.set_epoch(1)
        assert list(shard_a) != epoch0

    def test_validation(self):
        base = SequentialSampler(FakeSource(4))
        with pytest.raises(ValueError):
            ShardSampler(base, num_shards=0, shard_index=0)
        with pytest.raises(ValueError):
            ShardSampler(base, num_shards=2, shard_index=2)
        with pytest.raises(ValueError):
            ShardSampler(base, num_shards=2, shard_index=-1)
        with pytest.raises(ValueError):
            ShardSampler(base, num_shards=2, shard_index=0, mode="zigzag")

    def test_empty_trailing_contiguous_shard(self):
        # 4 samples over 3 shards: ceil(4/3)=2 per block -> [0,1], [2,3], [].
        shards = self._shards(lambda: SequentialSampler(FakeSource(4)), 3, "contiguous")
        assert [list(s) for s in shards] == [[0, 1], [2, 3], []]
        assert [len(s) for s in shards] == [2, 2, 0]
