"""Tests for the session wrapper, rubberband catch-up through the real
producer, and the experiments command-line interface."""

import threading
import time

import pytest

from repro.core import ConsumerConfig, ProducerConfig, SharedLoaderSession
from repro.core.rubberband import JoinDecision
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.experiments.__main__ import main as experiments_main


def tiny_loader(size=40, batch_size=4):
    dataset = SyntheticImageDataset(size, image_size=12, payload_bytes=16)
    pipeline = Compose([DecodeJpeg(height=12, width=12), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=batch_size, transform=pipeline)


class TestSharedLoaderSession:
    def test_double_start_rejected(self):
        session = SharedLoaderSession(tiny_loader(), producer_config=ProducerConfig(epochs=1))
        session.start()
        with pytest.raises(RuntimeError):
            session.start()
        session.shutdown()

    def test_context_manager_shuts_down(self):
        with SharedLoaderSession(
            tiny_loader(size=8), producer_config=ProducerConfig(epochs=1)
        ) as session:
            consumer = session.consumer(ConsumerConfig(max_epochs=1))
            consumed = sum(1 for _ in consumer)
            consumer.close()
        assert consumed == 2
        assert not session.is_running

    def test_is_running_reflects_producer_thread(self):
        session = SharedLoaderSession(
            tiny_loader(size=8), producer_config=ProducerConfig(epochs=1)
        )
        assert not session.is_running
        session.start()
        assert session.is_running
        consumer = session.consumer(ConsumerConfig(max_epochs=1))
        list(consumer)
        consumer.close()
        session.shutdown()
        assert not session.is_running


class TestRubberbandCatchUp:
    def test_late_joiner_inside_window_replays_missed_batches(self):
        """A consumer joining within the rubberband window receives the whole epoch."""
        session = SharedLoaderSession(
            tiny_loader(size=40, batch_size=4),  # 10 batches per epoch
            producer_config=ProducerConfig(
                epochs=1, rubberband_fraction=0.5, poll_interval=0.002
            ),
        )
        counts = {}

        def consume(name, delay=0.0, per_batch_sleep=0.0):
            if delay:
                time.sleep(delay)
            consumer = session.consumer(
                ConsumerConfig(consumer_id=name, max_epochs=1, receive_timeout=20)
            )
            seen = 0
            for _ in consumer:
                seen += 1
                if per_batch_sleep:
                    time.sleep(per_batch_sleep)
            counts[name] = seen
            consumer.close()

        early = threading.Thread(
            target=consume, args=("early",), kwargs={"per_batch_sleep": 0.1}
        )
        late = threading.Thread(target=consume, args=("late",), kwargs={"delay": 0.05})
        early.start()
        session.start()
        late.start()
        early.join(timeout=40)
        late.join(timeout=40)
        session.shutdown()
        assert not early.is_alive() and not late.is_alive()
        assert counts["early"] == 10
        # The late joiner arrived within the (generous) rubberband window, so
        # catch-up replay gives it the full epoch as well.
        assert counts["late"] == 10

    def test_rubberband_statistics_exposed_by_producer(self):
        session = SharedLoaderSession(
            tiny_loader(size=16, batch_size=4),
            producer_config=ProducerConfig(epochs=1, rubberband_fraction=0.25),
        )
        session.start()
        consumer = session.consumer(ConsumerConfig(max_epochs=1))
        list(consumer)
        consumer.close()
        session.shutdown()
        policy = session.producer.rubberband
        assert policy.joins_immediate + policy.joins_caught_up + policy.joins_deferred >= 1
        assert session.producer.status()["pending_batches"] == 0


class TestExperimentsCli:
    def test_list_option(self, capsys):
        assert experiments_main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig8" in output and "tab4" in output

    def test_unknown_experiment_is_an_error(self):
        assert experiments_main(["fig99"]) == 2

    def test_no_arguments_prints_help(self):
        assert experiments_main([]) == 1

    def test_running_one_experiment_prints_its_table(self, capsys):
        assert experiments_main(["fig1", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "Cloud instances" in output
        assert "| provider |" in output

    def test_running_a_simulated_experiment_fast(self, capsys):
        assert experiments_main(["ablation_producer_batch", "--fast"]) == 0
        assert "Repetition share" in capsys.readouterr().out
