"""Unit tests for the protocol policy components: ledger, buffer, flexible
batching, rubberbanding and configuration."""

import numpy as np
import pytest

from repro.core import (
    AckLedger,
    BatchBuffer,
    ConsumerConfig,
    FlexibleBatcher,
    ProducerConfig,
    RubberbandPolicy,
    plan_slices,
)
from repro.core.flexible_batch import recommend_producer_batch_size
from repro.core.rubberband import JoinDecision
from repro.tensor import BatchPayload, SharedMemoryPool, from_numpy


class TestConfigs:
    def test_producer_config_defaults_match_paper(self):
        config = ProducerConfig()
        assert config.buffer_size == 2
        assert config.rubberband_fraction == pytest.approx(0.02)
        assert config.data_address.endswith("/data")
        assert config.control_address.endswith("/control")

    def test_producer_config_validation(self):
        with pytest.raises(ValueError):
            ProducerConfig(buffer_size=0)
        with pytest.raises(ValueError):
            ProducerConfig(rubberband_fraction=1.5)
        with pytest.raises(ValueError):
            ProducerConfig(epochs=0)
        with pytest.raises(ValueError):
            ProducerConfig(producer_batch_size=0)
        with pytest.raises(ValueError):
            ProducerConfig(heartbeat_timeout=0)

    def test_consumer_config_validation(self):
        with pytest.raises(ValueError):
            ConsumerConfig(batch_size=0)
        with pytest.raises(ValueError):
            ConsumerConfig(buffer_size=0)
        with pytest.raises(ValueError):
            ConsumerConfig(max_epochs=0)
        with pytest.raises(ValueError):
            ConsumerConfig(receive_timeout=0)


class TestAckLedger:
    def test_batch_released_only_after_all_acks(self):
        released = []
        ledger = AckLedger(release_callback=released.append)
        ledger.publish((0, 0), ["a", "b"], segment_names=("seg",), nbytes=10)
        assert ledger.acknowledge("a", (0, 0)) is None
        assert ledger.pending_batches == 1
        record = ledger.acknowledge("b", (0, 0))
        assert record is not None and record.fully_acknowledged
        assert released and released[0].key == (0, 0)
        assert ledger.pending_batches == 0

    def test_duplicate_and_unknown_acks_are_counted_not_applied(self):
        ledger = AckLedger()
        ledger.publish((0, 0), ["a"])
        ledger.acknowledge("a", (0, 0))
        assert ledger.acknowledge("a", (0, 0)) is None
        assert ledger.acknowledge("ghost", (9, 9)) is None
        assert ledger.duplicate_acks == 2

    def test_publish_same_key_twice_rejected(self):
        ledger = AckLedger()
        ledger.publish((1, 5), ["a"])
        with pytest.raises(ValueError):
            ledger.publish((1, 5), ["a"])

    def test_publish_requires_consumers(self):
        with pytest.raises(ValueError):
            AckLedger().publish((0, 0), [])

    def test_flow_control_capacity(self):
        ledger = AckLedger()
        ledger.publish((0, 0), ["a"])
        ledger.publish((0, 1), ["a"])
        assert ledger.outstanding_for("a") == 2
        assert not ledger.can_publish_to("a", buffer_size=2)
        assert ledger.can_publish_to("a", buffer_size=3)
        assert not ledger.all_have_capacity(["a"], 2)
        ledger.acknowledge("a", (0, 0))
        assert ledger.can_publish_to("a", buffer_size=2)

    def test_slowest_consumer_identified(self):
        ledger = AckLedger()
        ledger.publish((0, 0), ["a", "b"])
        ledger.publish((0, 1), ["a", "b"])
        ledger.acknowledge("b", (0, 0))
        assert ledger.slowest_consumers(["a", "b"]) == ["a"]
        assert ledger.slowest_consumers([]) == []

    def test_drop_consumer_releases_batches_it_was_blocking(self):
        released = []
        ledger = AckLedger(release_callback=released.append)
        ledger.publish((0, 0), ["a", "b"])
        ledger.acknowledge("b", (0, 0))
        freed = ledger.drop_consumer("a")
        assert [record.key for record in freed] == [(0, 0)]
        assert ledger.pending_batches == 0

    def test_pending_bytes_tracking(self):
        ledger = AckLedger()
        ledger.publish((0, 0), ["a"], nbytes=100)
        ledger.publish((0, 1), ["a"], nbytes=50)
        assert ledger.pending_bytes == 150
        ledger.acknowledge("a", (0, 1))
        assert ledger.pending_bytes == 100


class TestBatchBuffer:
    def _payload(self, index=0):
        pool = SharedMemoryPool()
        tensor = pool.share_tensor(from_numpy(np.zeros(2, dtype=np.float32)))
        payload = BatchPayload.pack({"x": tensor}, batch_index=index, epoch=0)
        return payload

    def test_fifo_and_capacity(self):
        buffer = BatchBuffer(capacity=2)
        first, second = self._payload(0), self._payload(1)
        buffer.put(first)
        buffer.put(second)
        assert not buffer.has_room
        with pytest.raises(OverflowError):
            buffer.put(self._payload(2))
        assert buffer.get() is first
        assert buffer.get() is second
        assert buffer.get() is None

    def test_drift_and_high_water_mark(self):
        buffer = BatchBuffer(capacity=4)
        buffer.put_many([self._payload(i) for i in range(3)])
        assert buffer.drift == 3
        assert buffer.high_water_mark == 3
        buffer.get()
        assert buffer.drift == 2

    def test_peek_and_clear(self):
        buffer = BatchBuffer(capacity=2)
        payload = self._payload()
        assert buffer.peek() is None
        buffer.put(payload)
        assert buffer.peek() is payload
        dropped = buffer.clear()
        assert dropped == [payload]
        assert buffer.is_empty

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BatchBuffer(0)


class TestPlanSlices:
    def test_even_division_has_no_repetition(self):
        plan = plan_slices(16, 4)
        assert len(plan.slices) == 4
        assert plan.repeated_rows == 0
        assert all(spec.is_contiguous for spec in plan.slices)
        assert plan.covered_rows().tolist() == list(range(16))

    def test_uneven_division_wraps_and_bounds_repetition(self):
        plan = plan_slices(16, 7)
        assert len(plan.slices) == 3
        assert plan.rows_served == 21
        assert plan.repeated_rows == 5
        assert plan.repeated_rows <= 7 - 1
        assert plan.covered_rows().tolist() == list(range(16))

    def test_figure5_consumer_batch_sizes(self):
        # The paper's Figure 5: producer batch 16 serving consumers of 4, 7 and 6.
        repeated = {b: plan_slices(16, b).repeated_rows for b in (4, 7, 6)}
        assert repeated == {4: 0, 7: 5, 6: 2}

    def test_offset_rotates_start_but_preserves_coverage(self):
        plan = plan_slices(16, 4, offset=3)
        assert plan.slices[0].start == 3
        assert plan.covered_rows().tolist() == list(range(16))

    def test_shuffle_permutes_slice_order(self):
        ordered = plan_slices(64, 8)
        shuffled = plan_slices(64, 8, shuffle_seed=1)
        assert {s.start for s in ordered.slices} == {s.start for s in shuffled.slices}
        assert [s.start for s in ordered.slices] != [s.start for s in shuffled.slices]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_slices(0, 4)
        with pytest.raises(ValueError):
            plan_slices(16, 0)
        with pytest.raises(ValueError):
            plan_slices(8, 16)

    def test_recommended_producer_batch_size(self):
        assert recommend_producer_batch_size([128]) == 256
        assert recommend_producer_batch_size([128, 192, 224]) >= 448
        # Power-of-two consumers: the LCM keeps repetition at zero.
        assert recommend_producer_batch_size([64, 128]) % 128 == 0
        with pytest.raises(ValueError):
            recommend_producer_batch_size([])
        with pytest.raises(ValueError):
            recommend_producer_batch_size([0])


class TestFlexibleBatcher:
    def _batch(self, rows, value=0.0):
        return {
            "inputs": from_numpy(np.full((rows, 3), value, dtype=np.float32)),
            "targets": from_numpy(np.arange(rows, dtype=np.int64)),
        }

    def test_accumulates_loader_batches_into_producer_batches(self):
        batcher = FlexibleBatcher(8, {"a": 4})
        assert batcher.add_loader_batch(self._batch(5)) == []
        ready = batcher.add_loader_batch(self._batch(5))
        assert len(ready) == 1
        assert ready[0]["inputs"].shape == (8, 3)
        assert batcher.pending_rows == 2
        leftover = batcher.flush()
        assert leftover["inputs"].shape == (2, 3)
        assert batcher.flush() is None

    def test_carve_produces_views_for_contiguous_slices(self):
        batcher = FlexibleBatcher(16, {"a": 4, "b": 7})
        producer_batch = {
            "inputs": from_numpy(np.arange(16 * 2, dtype=np.float32).reshape(16, 2)),
        }
        slices_a = batcher.carve(producer_batch, "a")
        assert len(slices_a) == 4
        assert all(s["inputs"].shape == (4, 2) for s in slices_a)
        assert slices_a[0]["inputs"].shares_memory_with(producer_batch["inputs"])
        slices_b = batcher.carve(producer_batch, "b")
        assert len(slices_b) == 3
        assert all(s["inputs"].shape == (7, 2) for s in slices_b)

    def test_carve_rejects_wrong_row_count_and_unknown_consumer(self):
        batcher = FlexibleBatcher(8, {"a": 4})
        with pytest.raises(ValueError):
            batcher.carve(self._batch(6), "a")
        with pytest.raises(KeyError):
            batcher.plan_for("ghost")

    def test_offsets_differ_between_consumers(self):
        batcher = FlexibleBatcher(16, {"a": 4, "b": 4}, use_offsets=True)
        assert batcher.offset_for("a") != batcher.offset_for("b")
        no_offsets = FlexibleBatcher(16, {"a": 4, "b": 4})
        assert no_offsets.offset_for("a") == no_offsets.offset_for("b") == 0

    def test_shuffled_slices_vary_by_producer_batch(self):
        batcher = FlexibleBatcher(64, {"a": 8}, shuffle_slices=True, seed=1)
        starts_zero = [s.start for s in batcher.plan_for("a", 0).slices]
        starts_one = [s.start for s in batcher.plan_for("a", 1).slices]
        assert sorted(starts_zero) == sorted(starts_one)
        assert starts_zero != starts_one

    def test_repetition_report_and_bound(self):
        batcher = FlexibleBatcher(448, {"a": 128, "b": 192, "c": 224})
        report = batcher.repetition_report()
        assert set(report) == {"a", "b", "c"}
        assert batcher.max_repeated_share() < 0.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlexibleBatcher(0, {"a": 4})
        with pytest.raises(ValueError):
            FlexibleBatcher(8, {})
        with pytest.raises(ValueError):
            FlexibleBatcher(8, {"a": 16})


class TestRubberband:
    def test_window_geometry(self):
        policy = RubberbandPolicy(0.02, batches_per_epoch=1000)
        assert policy.window_batches == 20
        assert policy.within_window(10)
        assert policy.within_window(19)
        # The paper admits joiners strictly *before* the window has been
        # iterated: at exactly window_batches published, the window is over.
        assert not policy.within_window(20)
        assert not policy.within_window(25)

    def test_zero_window_disables_catch_up(self):
        policy = RubberbandPolicy(0.0, batches_per_epoch=100)
        assert policy.window_batches == 0
        assert policy.decide("c", 1) is JoinDecision.WAIT_FOR_NEXT_EPOCH

    def test_decisions_by_join_time(self):
        policy = RubberbandPolicy(0.02, batches_per_epoch=1000)
        assert policy.decide("early", 0) is JoinDecision.IMMEDIATE
        assert policy.decide("in-window", 15) is JoinDecision.CATCH_UP
        assert policy.decide("late", 500) is JoinDecision.WAIT_FOR_NEXT_EPOCH
        assert policy.joins_immediate == 1
        assert policy.joins_caught_up == 1
        assert policy.joins_deferred == 1

    def test_catch_up_progress_and_halting(self):
        policy = RubberbandPolicy(0.05, batches_per_epoch=100)
        assert policy.decide("c", 3) is JoinDecision.CATCH_UP
        assert policy.halting
        pending = policy.catch_up_for("c")
        assert pending.missed_batches == [0, 1, 2]
        assert not policy.record_replayed("c", 2)
        assert policy.record_replayed("c", 1)
        assert not policy.halting

    def test_record_replayed_for_unknown_consumer_is_true(self):
        policy = RubberbandPolicy(0.02, 100)
        assert policy.record_replayed("ghost") is True

    def test_abandon_and_epoch_reset_clear_state(self):
        policy = RubberbandPolicy(0.05, batches_per_epoch=100)
        policy.decide("a", 2)
        policy.abandon("a")
        assert not policy.halting
        policy.decide("b", 2)
        policy.reset_for_new_epoch()
        assert not policy.halting

    def test_unknown_epoch_length_raises(self):
        policy = RubberbandPolicy(0.02)
        with pytest.raises(ValueError):
            _ = policy.window_batches

    def test_validation(self):
        with pytest.raises(ValueError):
            RubberbandPolicy(-0.1)
        with pytest.raises(ValueError):
            RubberbandPolicy(0.02, batches_per_epoch=0).set_epoch_length(0)
