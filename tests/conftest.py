"""Shared test fixtures.

The thread-leak sentinel below guards the reactor refactor's central claim:
tests must not leave stray *non-daemon* threads behind (a leaked non-daemon
thread hangs interpreter shutdown).  Daemon threads — the process-wide
reactor, loader workers mid-teardown — are reaped by the interpreter and are
not failures, but anything non-daemon that outlives the session is.
"""

from __future__ import annotations

import threading
import time

import pytest


@pytest.fixture(scope="session", autouse=True)
def fail_on_leaked_threads():
    """Snapshot threads at session start; fail on new non-daemon survivors."""
    before = set(threading.enumerate())
    yield
    # Give orderly teardowns a grace period to join their workers.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before and t.is_alive() and not t.daemon
        ]
        if not leaked:
            return
        time.sleep(0.05)
    leaked = [
        t
        for t in threading.enumerate()
        if t not in before and t.is_alive() and not t.daemon
    ]
    if leaked:
        names = ", ".join(sorted(t.name for t in leaked))
        pytest.fail(
            f"test session leaked {len(leaked)} non-daemon thread(s): {names}",
            pytrace=False,
        )
