"""Shared test fixtures.

The thread-leak sentinel below guards the reactor refactor's central claim:
tests must not leave stray *non-daemon* threads behind (a leaked non-daemon
thread hangs interpreter shutdown).  Daemon threads — the process-wide
reactor, loader workers mid-teardown — are reaped by the interpreter and are
not failures, but anything non-daemon that outlives the session is.

The reactor-quiescence sentinel is its runtime twin: because every consumer
in the process rides one shared event loop, a test that forgets to close a
consumer leaks its subscription, heartbeat timer or broker socket into every
later test.  At session end the process-wide reactor must be back to zero
channels, zero subscribers, zero live timers, zero registered sockets and
zero shared TCP clients.
"""

from __future__ import annotations

import threading
import time

import pytest


@pytest.fixture(scope="session", autouse=True)
def fail_on_leaked_threads():
    """Snapshot threads at session start; fail on new non-daemon survivors."""
    before = set(threading.enumerate())
    yield
    # Give orderly teardowns a grace period to join their workers.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before and t.is_alive() and not t.daemon
        ]
        if not leaked:
            return
        time.sleep(0.05)
    leaked = [
        t
        for t in threading.enumerate()
        if t not in before and t.is_alive() and not t.daemon
    ]
    if leaked:
        names = ", ".join(sorted(t.name for t in leaked))
        pytest.fail(
            f"test session leaked {len(leaked)} non-daemon thread(s): {names}",
            pytrace=False,
        )


#: Reactor stats that must read zero once every consumer is closed.
_QUIESCENT_STATS = ("channels", "subscribers", "timers", "sockets", "tcp_clients")


@pytest.fixture(scope="session", autouse=True)
def fail_on_leaked_reactor_state():
    """The shared reactor must be quiescent once the session's tests finish:
    no channel fan-outs, no subscriptions, no live heartbeat timers, no
    selector-registered sockets, no refcounted broker connections."""
    yield
    from repro.messaging.reactor import get_reactor

    reactor = get_reactor()
    # Unsubscribes and socket unregistrations are submitted to the reactor
    # thread; give in-flight teardown work a grace period to drain.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        stats = reactor.stats()
        if not any(stats[key] for key in _QUIESCENT_STATS):
            return
        time.sleep(0.05)
    stats = reactor.stats()
    residue = {key: stats[key] for key in _QUIESCENT_STATS if stats[key]}
    if residue:
        pytest.fail(
            f"test session left the shared reactor non-quiescent: {residue} "
            "(a consumer, group merge or broker connection was not closed)",
            pytrace=False,
        )
