"""Tests for the URI endpoint layer: the transport registry, address
resolution, the ``repro.serve()`` / ``repro.attach()`` API, session lifecycle
guards, and duplicate-consumer protection."""

import threading

import pytest

import repro
from repro.core import ConsumerConfig, ProducerConfig, SharedLoaderSession
from repro.core.consumer import TensorConsumer
from repro.core.producer import TensorProducer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.messaging import InProcHub
from repro.messaging.endpoint import (
    InProcTransport,
    LocalObjectTransport,
    TransportRegistry,
    bind,
    connect,
    default_registry,
    is_uri,
    parse_address,
)
from repro.messaging.errors import (
    AddressError,
    AddressInUseError,
    AddressNotServedError,
    DuplicateConsumerError,
    MessagingError,
    UnknownSchemeError,
)
from repro.tensor import SharedMemoryPool


def tiny_loader(size=24, batch_size=4):
    dataset = SyntheticImageDataset(size, image_size=8, payload_bytes=16)
    pipeline = Compose([DecodeJpeg(height=8, width=8), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=batch_size, transform=pipeline)


# ---------------------------------------------------------------------------
# address parsing
# ---------------------------------------------------------------------------


class TestAddressParsing:
    def test_parse_splits_scheme_and_locator(self):
        assert parse_address("inproc://demo") == ("inproc", "demo")
        assert parse_address("tcp://127.0.0.1:5555") == ("tcp", "127.0.0.1:5555")

    @pytest.mark.parametrize(
        "bad", ["tensorsocket", "inproc://", "://x", "INPROC://x", "9p://x", 42]
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_is_uri(self):
        assert is_uri("inproc://demo")
        assert not is_uri("tensorsocket")


# ---------------------------------------------------------------------------
# registry and transports
# ---------------------------------------------------------------------------


class TestTransportRegistry:
    def test_register_lookup_and_schemes(self):
        registry = TransportRegistry()
        transport = InProcTransport()
        registry.register("inproc", transport)
        assert registry.get("inproc") is transport
        assert registry.schemes() == ["inproc"]

    def test_duplicate_scheme_rejected_unless_replace(self):
        registry = TransportRegistry()
        registry.register("inproc", InProcTransport())
        with pytest.raises(AddressInUseError):
            registry.register("inproc", InProcTransport())
        replacement = InProcTransport()
        registry.register("inproc", replacement, replace=True)
        assert registry.get("inproc") is replacement

    def test_unknown_scheme_error_lists_known_schemes(self):
        registry = TransportRegistry()
        registry.register("inproc", InProcTransport())
        with pytest.raises(UnknownSchemeError, match="inproc"):
            registry.get("mp")

    def test_default_registry_serves_inproc_and_sim(self):
        # sim:// is registered by the training layer at import time.
        import repro.training.loading  # noqa: F401

        schemes = default_registry().schemes()
        assert "inproc" in schemes and "sim" in schemes


class TestInProcTransport:
    def test_bind_connect_share_hub_and_pool(self):
        endpoint = bind("inproc://transport-test")
        try:
            attached = connect("inproc://transport-test")
            assert attached.hub is endpoint.hub
            assert attached.pool is endpoint.pool
        finally:
            endpoint.release()

    def test_bind_collision_and_release(self):
        endpoint = bind("inproc://collide")
        with pytest.raises(AddressInUseError):
            bind("inproc://collide")
        endpoint.release()
        endpoint.release()  # idempotent
        rebound = bind("inproc://collide")  # address is free again
        rebound.release()

    def test_connect_unserved_address(self):
        with pytest.raises(AddressNotServedError, match="repro.serve"):
            connect("inproc://never-served")

    def test_connect_side_release_keeps_address_served(self):
        endpoint = bind("inproc://keep")
        try:
            connect("inproc://keep").release()
            assert connect("inproc://keep").hub is endpoint.hub
        finally:
            endpoint.release()


class TestLocalObjectTransport:
    def test_serves_arbitrary_objects(self):
        transport = LocalObjectTransport("obj")
        registry = TransportRegistry()
        registry.register("obj", transport)
        resource = object()
        endpoint = registry.bind("obj://thing", resource=resource)
        assert registry.connect("obj://thing").resource is resource
        endpoint.release()
        with pytest.raises(AddressNotServedError):
            registry.connect("obj://thing")

    def test_bind_requires_a_resource(self):
        transport = LocalObjectTransport("obj")
        with pytest.raises(AddressError):
            transport.bind("obj://thing")


# ---------------------------------------------------------------------------
# serve() / attach()
# ---------------------------------------------------------------------------


class TestServeAttach:
    def test_round_trip_two_threaded_consumers(self):
        """serve + attach across threads, no hub/pool objects passed anywhere."""
        session = repro.serve(
            tiny_loader(size=24), address="inproc://roundtrip", epochs=1, start=False
        )
        counts = {}
        ready = threading.Barrier(3)

        def consume(name):
            consumer = repro.attach(
                "inproc://roundtrip", consumer_id=name, max_epochs=1, receive_timeout=20
            )
            ready.wait(timeout=10)
            counts[name] = sum(1 for _ in consumer)

        threads = [threading.Thread(target=consume, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        ready.wait(timeout=10)  # both consumers attached before the first batch
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        session.shutdown()
        assert counts == {"t0": 6, "t1": 6}

    def test_attach_without_serving_is_a_clear_error(self):
        with pytest.raises(AddressNotServedError):
            repro.attach("inproc://nobody-home")

    def test_attach_unknown_scheme(self):
        with pytest.raises(UnknownSchemeError):
            repro.attach("zmq://demo")

    def test_serve_and_attach_reject_malformed_addresses(self):
        # "inproc:/x" (one slash) must not silently serve an unreachable session.
        with pytest.raises(AddressError):
            repro.serve(tiny_loader(), address="inproc:/typo")
        with pytest.raises(AddressError):
            repro.attach("inproc:/typo")

    def test_serve_rejects_config_and_kwargs_together(self):
        with pytest.raises(TypeError):
            repro.serve(
                tiny_loader(),
                address="inproc://conflict",
                producer_config=ProducerConfig(),
                epochs=2,
            )

    def test_config_address_used_when_address_param_omitted(self):
        config = ProducerConfig(address="inproc://from-config")
        session = repro.serve(tiny_loader(), producer_config=config, start=False)
        try:
            assert session.address == "inproc://from-config"
            consumer = repro.attach(
                consumer_config=ConsumerConfig(address="inproc://from-config")
            )
            assert consumer.config.address == "inproc://from-config"
        finally:
            session.shutdown()

    def test_explicit_hub_session_never_enters_the_directory(self):
        # A hub-wired session must not clobber the directory entry of the
        # session that actually bound the address.
        bound = repro.serve(tiny_loader(), address="inproc://owner", start=False)
        hub, pool = InProcHub(), SharedMemoryPool()
        wired = SharedLoaderSession(
            tiny_loader(), address="inproc://owner", hub=hub, pool=pool
        )
        try:
            assert SharedLoaderSession.at("inproc://owner") is bound
        finally:
            wired.shutdown()
            assert SharedLoaderSession.at("inproc://owner") is bound
            bound.shutdown()

    def test_session_is_discoverable_at_its_address(self):
        session = repro.serve(tiny_loader(), address="inproc://lookup", start=False)
        try:
            assert SharedLoaderSession.at("inproc://lookup") is session
            assert SharedLoaderSession.at("inproc://elsewhere") is None
        finally:
            session.shutdown()
        assert SharedLoaderSession.at("inproc://lookup") is None

    def test_address_reusable_after_shutdown(self):
        repro.serve(tiny_loader(size=8), address="inproc://reuse", start=False).shutdown()
        session = repro.serve(tiny_loader(size=8), address="inproc://reuse", epochs=1)
        consumer = repro.attach("inproc://reuse", max_epochs=1)
        assert sum(1 for _ in consumer) == 2
        session.shutdown()

    def test_attach_falls_back_to_endpoint_without_a_session(self):
        """A bare TensorProducer served by address is attachable too."""
        producer = TensorProducer(
            tiny_loader(size=8), address="inproc://bare-producer", config=ProducerConfig(epochs=1)
        )
        consumer = repro.attach("inproc://bare-producer", max_epochs=1, receive_timeout=20)
        thread = threading.Thread(target=lambda: (list(producer), producer.join()))
        thread.start()
        assert sum(1 for _ in consumer) == 2
        thread.join(timeout=30)
        consumer.close()


# ---------------------------------------------------------------------------
# backward compatibility: explicit hub/pool wiring
# ---------------------------------------------------------------------------


class TestExplicitWiringCompat:
    def test_producer_consumer_with_explicit_hub_and_pool(self):
        hub, pool = InProcHub(), SharedMemoryPool()
        producer = TensorProducer(
            tiny_loader(size=8), hub=hub, pool=pool, config=ProducerConfig(epochs=1)
        )
        consumer = TensorConsumer(hub=hub, pool=pool, config=ConsumerConfig(max_epochs=1))
        thread = threading.Thread(target=lambda: (list(producer), producer.join()))
        thread.start()
        assert sum(1 for _ in consumer) == 2
        thread.join(timeout=30)
        consumer.close()
        # Non-URI addresses never touch the registry.
        assert "tensorsocket" not in InProcTransport().locators()

    def test_session_with_explicit_hub_is_not_discoverable(self):
        hub, pool = InProcHub(), SharedMemoryPool()
        session = SharedLoaderSession(tiny_loader(size=8), hub=hub, pool=pool)
        assert SharedLoaderSession.at(session.address) is None
        assert session.hub is hub and session.pool is pool
        session.shutdown()

    def test_consumer_without_hub_or_uri_address_is_an_error(self):
        with pytest.raises(MessagingError, match="hub"):
            TensorConsumer(config=ConsumerConfig(address="tensorsocket"))

    def test_explicit_hub_overrides_uri_resolution(self):
        hub, pool = InProcHub(), SharedMemoryPool()
        producer = TensorProducer(
            tiny_loader(size=8),
            address="inproc://override-me",
            hub=hub,
            pool=pool,
            config=ProducerConfig(epochs=1),
        )
        # The explicit hub wins and the address is not bound in the registry.
        assert producer.hub is hub
        with pytest.raises(AddressNotServedError):
            connect("inproc://override-me")


# ---------------------------------------------------------------------------
# session lifecycle guards and shutdown safety
# ---------------------------------------------------------------------------


class TestSessionLifecycle:
    def test_start_after_shutdown_raises(self):
        session = repro.serve(tiny_loader(), address="inproc://dead", start=False)
        session.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            session.start()

    def test_consumer_after_shutdown_raises(self):
        session = repro.serve(tiny_loader(), address="inproc://dead2", start=False)
        session.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            session.consumer()
        # The address was released at shutdown, so attach-by-string fails too.
        with pytest.raises(AddressNotServedError):
            repro.attach("inproc://dead2")

    def test_shutdown_is_idempotent(self):
        session = repro.serve(tiny_loader(size=8), address="inproc://twice", epochs=1)
        consumer = repro.attach("inproc://twice", max_epochs=1)
        list(consumer)
        session.shutdown()
        session.shutdown()

    def test_consumer_close_error_does_not_leak_pool_or_address(self):
        session = repro.serve(tiny_loader(size=8), address="inproc://leaky", epochs=1)
        consumer = repro.attach("inproc://leaky", max_epochs=1)
        list(consumer)

        def exploding_close():
            raise ValueError("close failed")

        consumer.close = exploding_close
        with pytest.raises(ValueError, match="close failed"):
            session.shutdown()
        # Cleanup still happened: memory freed, address free, session gone.
        assert session.pool.live_segments == 0
        assert SharedLoaderSession.at("inproc://leaky") is None
        repro.serve(tiny_loader(size=8), address="inproc://leaky", start=False).shutdown()
        # Restore the real close and run it: the sabotaged consumer still owns
        # a reactor subscription and heartbeat timer, and the session-scoped
        # quiescence sentinel rightly flags them if left behind.
        del consumer.close
        consumer.close()

    def test_producer_error_reraised_after_cleanup(self):
        class ExplodingLoader:
            def __iter__(self):
                raise RuntimeError("loader blew up")

            def __len__(self):
                return 1

        session = repro.serve(ExplodingLoader(), address="inproc://boom")
        with pytest.raises(RuntimeError, match="loader blew up"):
            session.shutdown()
        assert SharedLoaderSession.at("inproc://boom") is None
        # The endpoint was released despite the producer thread dying early.
        repro.serve(tiny_loader(size=8), address="inproc://boom", start=False).shutdown()


# ---------------------------------------------------------------------------
# duplicate consumer ids
# ---------------------------------------------------------------------------


class TestDuplicateConsumerIds:
    def test_second_consumer_with_same_id_is_rejected(self):
        session = repro.serve(
            tiny_loader(size=16), address="inproc://dups", epochs=1, start=False
        )
        first = repro.attach("inproc://dups", consumer_id="worker", max_epochs=1)
        impostor = repro.attach(
            "inproc://dups", consumer_id="worker", max_epochs=1, receive_timeout=20
        )
        session.start()
        # The rightful owner consumes the whole epoch, unaffected.
        assert sum(1 for _ in first) == 4
        with pytest.raises(DuplicateConsumerError, match="worker"):
            list(impostor)
        session.shutdown()

    def test_rejected_duplicate_closing_does_not_drop_the_owner(self):
        """The impostor's BYE carries its own token and must not deregister
        the rightful consumer (which would corrupt the ack ledger)."""
        session = repro.serve(
            tiny_loader(size=16), address="inproc://dupbye", epochs=1, start=False
        )
        owner = repro.attach("inproc://dupbye", consumer_id="worker", max_epochs=1)
        impostor = repro.attach(
            "inproc://dupbye", consumer_id="worker", max_epochs=1, receive_timeout=20
        )
        session.start()
        with pytest.raises(DuplicateConsumerError):
            list(impostor)
        impostor.close()  # sends BYE with the impostor's token
        # The owner still consumes the whole epoch after the impostor left.
        assert sum(1 for _ in owner) == 4
        session.shutdown()

    def test_same_consumer_re_registration_is_idempotent(self):
        session = repro.serve(
            tiny_loader(size=16), address="inproc://rehello", epochs=1, start=False
        )
        consumer = repro.attach("inproc://rehello", consumer_id="worker", max_epochs=1)
        consumer._register()  # a HELLO retry from the same instance
        session.start()
        assert sum(1 for _ in consumer) == 4
        producer = session.producer
        assert list(producer.consumers) == ["worker"]
        session.shutdown()
