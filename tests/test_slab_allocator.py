"""The slab allocator: size-class reuse, generations/ABA, trim, quotas.

PR 10's tentpole: ``SharedMemoryPool`` recycles freed segments through
per-size-class free lists (same name, bumped generation) and packs a whole
batch into one segment.  These tests pin down the allocator's contracts:

* exact-class reuse preferred, larger classes only within the 2x waste bound,
* steady-state allocation creates zero new segments once the list is warm,
* a (name, generation) handle packed before a recycle is *rejected* — it
  must never alias the segment's new occupant (the ABA hazard),
* retained-free bytes respect the hard cap and the idle trim, and drain to
  zero on shutdown,
* tenant quotas charge live bytes only — free-listed segments are unowned,
* cache holds pin the generation until the last hold is gone,
* ``share_batch`` lays every tensor of a batch into one aligned segment.
"""

import multiprocessing
import time

import numpy as np
import pytest

import repro
from repro.core import ConsumerConfig
from repro.tensor import (
    BatchPayload,
    PayloadError,
    QuotaExceededError,
    SharedMemoryPool,
    TensorPayload,
    from_numpy,
)
from repro.tensor.errors import StaleHandleError
from repro.tensor.shared_memory import (
    _SLAB_ALIGN,
    _SLAB_HEADER_SIZE,
    _SLAB_MIN_CLASS,
    _size_class,
)


@pytest.fixture
def pool():
    pool = SharedMemoryPool()
    yield pool
    pool.shutdown()


# ---------------------------------------------------------------------------
# size classes
# ---------------------------------------------------------------------------


class TestSizeClasses:
    def test_minimum_class_floor(self):
        assert _size_class(1) == _SLAB_MIN_CLASS
        assert _size_class(_SLAB_MIN_CLASS) == _SLAB_MIN_CLASS

    def test_powers_of_two_are_their_own_class(self):
        for power in (8192, 16384, 1 << 20):
            assert _size_class(power) == power

    def test_quarter_subdivisions_bound_waste(self):
        # Between 4096 and 8192 the classes step by 1024 (quarter of 4096).
        assert _size_class(4097) == 5120
        assert _size_class(5000) == 5120
        assert _size_class(5121) == 6144
        assert _size_class(8191) == 8192
        # Internal waste never exceeds 25% above the floor class (four
        # subdivisions per power-of-two doubling, jemalloc-style).
        for nbytes in (4097, 5000, 9000, 100_000, 1_000_001):
            cls = _size_class(nbytes)
            assert cls >= nbytes
            assert cls - nbytes <= max(nbytes * 0.25, _SLAB_MIN_CLASS)


# ---------------------------------------------------------------------------
# segment reuse
# ---------------------------------------------------------------------------


class TestSegmentReuse:
    def test_freed_segment_is_recycled_with_same_name(self, pool):
        first = pool.allocate_tensor((8,), "float32")
        name = first.segment.name
        assert first.segment.generation == 1
        pool.release(name)
        second = pool.allocate_tensor((8,), "float32")
        assert second.segment.name == name
        assert second.segment.generation == 2
        assert pool.segment_reuse_hits == 1
        assert pool.segments_created == 1

    def test_steady_state_creates_no_new_segments(self, pool):
        for _ in range(20):
            tensor = pool.allocate_tensor((64, 4), "float32")
            pool.release(tensor.segment.name)
        assert pool.segments_created == 1
        assert pool.segment_reuse_hits == 19
        assert pool.segment_reuse_misses == 1
        assert pool.mmap_total == 1

    def test_exact_class_preferred_over_larger(self, pool):
        small = pool.allocate_tensor((_SLAB_MIN_CLASS,), "uint8")
        large = pool.allocate_tensor((8192,), "uint8")
        small_name, large_name = small.segment.name, large.segment.name
        pool.release(large_name)  # freed first: without exact-fit it would win
        pool.release(small_name)
        reused = pool.allocate_tensor((_SLAB_MIN_CLASS,), "uint8")
        assert reused.segment.name == small_name

    def test_larger_class_fallback_within_2x(self, pool):
        big = pool.allocate_tensor((8192,), "uint8")
        big_name = big.segment.name
        pool.release(big_name)
        # 4097 bytes -> class 5120; the free 8192 segment is within 2x.
        fallback = pool.allocate_tensor((4097,), "uint8")
        assert fallback.segment.name == big_name
        assert pool.segment_reuse_hits == 1

    def test_no_fallback_past_2x_waste_bound(self, pool):
        huge = pool.allocate_tensor((1 << 20,), "uint8")
        huge_name = huge.segment.name
        pool.release(huge_name)
        small = pool.allocate_tensor((8,), "float32")
        assert small.segment.name != huge_name
        assert pool.segment_reuse_hits == 0
        assert pool.segments_created == 2

    def test_reuse_pops_warmest_segment_first(self, pool):
        a = pool.allocate_tensor((8,), "float32")
        b = pool.allocate_tensor((8,), "float32")
        a_name, b_name = a.segment.name, b.segment.name
        pool.release(a_name)
        pool.release(b_name)  # freed last -> warmest -> reused first
        assert pool.allocate_tensor((8,), "float32").segment.name == b_name

    def test_accounting_charges_logical_bytes_not_class_capacity(self, pool):
        tensor = pool.allocate_tensor((4, 4), "float32")  # 64 logical bytes
        assert pool.bytes_in_flight == 64
        pool.release(tensor.segment.name)
        assert pool.bytes_in_flight == 0
        # The free list holds the real segment (class capacity + header).
        assert pool.free_bytes == _SLAB_MIN_CLASS + _SLAB_HEADER_SIZE


# ---------------------------------------------------------------------------
# generations / ABA
# ---------------------------------------------------------------------------


class TestGenerationABA:
    def test_stale_handle_rejected_after_recycle(self, pool):
        victim = pool.allocate_tensor((8,), "float32")
        victim.numpy()[...] = 1.0
        payload = TensorPayload.from_shared(victim)
        assert payload.generation == 1
        name = victim.segment.name
        pool.release(name)
        attacker = pool.allocate_tensor((8,), "float32")
        assert attacker.segment.name == name  # recycled: same name, new bytes
        attacker.numpy()[...] = 666.0
        with pytest.raises(PayloadError, match="recycled"):
            payload.unpack(pool)

    def test_stale_generation_raises_stale_handle_error(self, pool):
        tensor = pool.allocate_tensor((8,), "float32")
        name = tensor.segment.name
        pool.release(name)
        pool.allocate_tensor((8,), "float32")
        with pytest.raises(StaleHandleError):
            pool.attach(name, (8,), "float32", offset=_SLAB_HEADER_SIZE, generation=1)

    def test_current_generation_attaches_fine(self, pool):
        tensor = pool.allocate_tensor((8,), "float32")
        pool.release(tensor.segment.name)
        recycled = pool.allocate_tensor((8,), "float32")
        recycled.numpy()[...] = 3.0
        rebuilt = TensorPayload.from_shared(recycled).unpack(pool)
        assert rebuilt.numpy().sum() == 24.0

    def test_attach_by_name_validates_against_slab_header(self):
        # Two pools sharing the inproc registry model producer + consumer
        # processes: the consumer-side check reads the segment's in-band
        # header, not the producer pool's books.
        producer = SharedMemoryPool(name_prefix="aba-prod")
        consumer = SharedMemoryPool(attach_by_name=True)
        try:
            tensor = producer.allocate_tensor((8,), "float32")
            tensor.numpy()[...] = 7.0
            payload = TensorPayload.from_shared(tensor)
            assert payload.unpack(consumer).numpy().sum() == 56.0
            producer.release(tensor.segment.name)
            producer.allocate_tensor((8,), "float32")  # recycle bumps header
            with pytest.raises(PayloadError, match="recycled"):
                payload.unpack(consumer)
        finally:
            consumer.shutdown()
            producer.shutdown()

    def test_payload_generation_survives_dict_roundtrip(self, pool):
        payload = TensorPayload.from_shared(pool.allocate_tensor((4,)))
        assert TensorPayload.from_dict(payload.to_dict()).generation == 1

    def test_batch_payload_exposes_handles(self, pool):
        staged = pool.share_batch(
            {
                "x": from_numpy(np.ones((4, 2), dtype=np.float32)),
                "y": from_numpy(np.zeros(4, dtype=np.int64)),
            }
        )
        payload = BatchPayload.pack(staged, batch_index=0, epoch=0)
        assert len(payload.segment_handles) == 1
        ((name, generation),) = payload.segment_handles
        assert name == staged["x"].segment.name
        assert generation == 1


# ---------------------------------------------------------------------------
# free-list bounds: hard cap, idle trim, explicit trim, shutdown
# ---------------------------------------------------------------------------


class TestFreeListBounds:
    def test_zero_cap_restores_eager_unlink(self):
        pool = SharedMemoryPool(free_list_max_bytes=0)
        try:
            tensor = pool.allocate_tensor((8,), "float32")
            pool.release(tensor.segment.name)
            assert pool.free_bytes == 0
            assert pool.free_segments == 0
            again = pool.allocate_tensor((8,), "float32")
            assert again.segment.name != tensor.segment.name
            assert pool.segment_reuse_hits == 0
        finally:
            pool.shutdown()

    def test_hard_cap_retires_overflow(self):
        segment_size = _SLAB_MIN_CLASS + _SLAB_HEADER_SIZE
        pool = SharedMemoryPool(free_list_max_bytes=segment_size)
        try:
            a = pool.allocate_tensor((8,), "float32")
            b = pool.allocate_tensor((8,), "float32")
            pool.release(a.segment.name)
            assert pool.free_bytes == segment_size
            pool.release(b.segment.name)  # would exceed the cap: unlinked
            assert pool.free_bytes == segment_size
            assert pool.free_segments == 1
        finally:
            pool.shutdown()

    def test_idle_trim_unlinks_stale_entries(self):
        pool = SharedMemoryPool(free_idle_seconds=0.01)
        try:
            tensor = pool.allocate_tensor((8,), "float32")
            pool.release(tensor.segment.name)
            assert pool.free_segments == 1
            time.sleep(0.05)
            # The trim runs on the allocation path; ask for a class the stale
            # entry cannot serve so the miss proves it was unlinked, not used.
            pool.allocate_tensor((1 << 20,), "uint8")
            assert pool.free_segments == 0
            assert pool.free_bytes == 0
        finally:
            pool.shutdown()

    def test_explicit_trim_free_empties_oldest_first(self, pool):
        small = pool.allocate_tensor((8,), "float32")
        big = pool.allocate_tensor((8192,), "uint8")
        pool.release(small.segment.name)  # older free entry
        pool.release(big.segment.name)
        big_size = _size_class(8192) + _SLAB_HEADER_SIZE
        released = pool.trim_free(max_bytes=big_size)
        assert released == _SLAB_MIN_CLASS + _SLAB_HEADER_SIZE  # oldest went
        assert pool.free_bytes == big_size
        assert pool.trim_free() == big_size
        assert pool.free_bytes == 0

    def test_shutdown_drains_free_bytes(self):
        pool = SharedMemoryPool()
        tensor = pool.allocate_tensor((8,), "float32")
        pool.release(tensor.segment.name)
        assert pool.free_bytes > 0
        pool.shutdown()
        assert pool.free_bytes == 0
        assert pool.bytes_in_flight == 0
        assert pool.cached_bytes == 0


# ---------------------------------------------------------------------------
# tenant quotas vs free-listed bytes
# ---------------------------------------------------------------------------


class TestTenantQuotaAccounting:
    def test_free_listed_bytes_are_not_charged_to_the_tenant(self, pool):
        view = pool.tenant_view("team-a", quota_bytes=1 << 20)
        tensor = view.allocate_tensor((1024,), "uint8")
        assert view.bytes_used == 1024
        pool.release(tensor.segment.name)
        assert view.bytes_used == 0  # charge ends at free time...
        assert pool.free_bytes > 0  # ...even though the segment is retained

    def test_freed_quota_headroom_is_immediately_reusable(self, pool):
        view = pool.tenant_view("team-b", quota_bytes=1024)
        first = view.allocate_tensor((1024,), "uint8")
        with pytest.raises(QuotaExceededError):
            view.allocate_tensor((1024,), "uint8")
        pool.release(first.segment.name)
        second = view.allocate_tensor((1024,), "uint8")
        # The recycled segment: quota headroom came back with the free.
        assert second.segment.name == first.segment.name

    def test_one_tenants_free_segment_serves_another(self, pool):
        a = pool.tenant_view("team-c", quota_bytes=1 << 20)
        b = pool.tenant_view("team-d", quota_bytes=1 << 20)
        tensor = a.allocate_tensor((512,), "uint8")
        pool.release(tensor.segment.name)
        reused = b.allocate_tensor((512,), "uint8")
        assert reused.segment.name == tensor.segment.name
        assert a.bytes_used == 0
        assert b.bytes_used == 512

    def test_share_batch_charges_tenant_once(self, pool):
        view = pool.tenant_view("team-e", quota_bytes=4096)
        staged = view.share_batch(
            {
                "x": from_numpy(np.ones(256, dtype=np.uint8)),
                "y": from_numpy(np.ones(256, dtype=np.uint8)),
            }
        )
        assert view.bytes_used == 512
        (name,) = {t.segment.name for t in staged.values()}
        pool.release(name)
        assert view.bytes_used == 0


# ---------------------------------------------------------------------------
# cache holds pin the generation
# ---------------------------------------------------------------------------


class TestCacheHoldPinsGeneration:
    def test_recycle_blocked_while_cache_hold_lives(self, pool):
        tensor = pool.allocate_tensor((8,), "float32")
        tensor.numpy()[...] = 2.0
        payload = TensorPayload.from_shared(tensor)
        name = tensor.segment.name
        pool.retain_cached(name)
        pool.release(name)  # producer hold gone; cache hold keeps it live
        assert pool.generation(name) == 1
        assert payload.unpack(pool).numpy().sum() == 16.0  # handle still valid
        # A same-class allocation cannot steal the pinned segment.
        other = pool.allocate_tensor((8,), "float32")
        assert other.segment.name != name
        pool.release_cached(name)  # last hold: now it recycles
        recycled = pool.allocate_tensor((8,), "float32")
        assert recycled.segment.name == name
        assert recycled.segment.generation == 2
        with pytest.raises(PayloadError, match="recycled"):
            payload.unpack(pool)


# ---------------------------------------------------------------------------
# single-segment batch packing
# ---------------------------------------------------------------------------


class TestShareBatch:
    def test_batch_lands_in_one_segment_at_aligned_offsets(self, pool):
        staged = pool.share_batch(
            {
                "inputs": from_numpy(np.arange(24, dtype=np.float32).reshape(8, 3)),
                "targets": from_numpy(np.arange(8, dtype=np.int64)),
            }
        )
        segments = {t.segment.name for t in staged.values()}
        assert len(segments) == 1
        assert pool.live_segments == 1
        for tensor in staged.values():
            assert tensor.segment_offset % _SLAB_ALIGN == 0
            assert tensor.segment_offset >= _SLAB_HEADER_SIZE
        np.testing.assert_array_equal(
            staged["inputs"].numpy(), np.arange(24, dtype=np.float32).reshape(8, 3)
        )
        np.testing.assert_array_equal(
            staged["targets"].numpy(), np.arange(8, dtype=np.int64)
        )

    def test_packed_batch_payload_has_one_handle_and_unpacks(self, pool):
        staged = pool.share_batch(
            {
                "inputs": from_numpy(np.ones((4, 4), dtype=np.float32)),
                "targets": from_numpy(np.zeros(4, dtype=np.int64)),
            }
        )
        payload = BatchPayload.pack(staged, batch_index=1, epoch=0)
        assert len(payload.segment_names) == 1
        rebuilt = payload.unpack(pool)
        assert rebuilt["inputs"].shares_memory_with(staged["inputs"])
        assert rebuilt["targets"].shares_memory_with(staged["targets"])

    def test_batch_accounting_is_logical_sum(self, pool):
        pool.share_batch(
            {
                "x": from_numpy(np.zeros(100, dtype=np.uint8)),
                "y": from_numpy(np.zeros(10, dtype=np.uint8)),
            }
        )
        assert pool.bytes_in_flight == 110

    def test_batch_refcount_is_per_segment_not_per_tensor(self, pool):
        staged = pool.share_batch(
            {
                "x": from_numpy(np.zeros(4, dtype=np.float32)),
                "y": from_numpy(np.zeros(4, dtype=np.float32)),
            },
            initial_refcount=1,
        )
        (name,) = {t.segment.name for t in staged.values()}
        assert pool.refcount(name) == 1
        pool.release(name)
        assert pool.live_segments == 0

    def test_whole_batch_recycles_into_one_warm_segment(self, pool):
        def batch():
            return {
                "inputs": from_numpy(np.ones((8, 3), dtype=np.float32)),
                "targets": from_numpy(np.zeros(8, dtype=np.int64)),
            }

        for _ in range(10):
            staged = pool.share_batch(batch())
            (name,) = {t.segment.name for t in staged.values()}
            pool.release(name)
        assert pool.segments_created == 1
        assert pool.segment_reuse_hits == 9

    def test_empty_batch_rejected(self, pool):
        from repro.tensor import SharedMemoryError

        with pytest.raises(SharedMemoryError):
            pool.share_batch({})


# ---------------------------------------------------------------------------
# attach-cache trim regression (satellite 1)
# ---------------------------------------------------------------------------


class TestAttachCacheTrim:
    def test_pinned_view_does_not_stop_the_trim(self):
        producer = SharedMemoryPool(name_prefix="trim-prod")
        consumer = SharedMemoryPool(attach_by_name=True, attach_cache_limit=2)
        try:
            tensors = [producer.allocate_tensor((8,), "float32") for _ in range(4)]
            names = [t.segment.name for t in tensors]
            consumer.attach(names[0], (8,), "float32", offset=_SLAB_HEADER_SIZE)
            # Pin the OLDEST cached handle: close() refuses while views live.
            pinned = consumer._attached[names[0]]
            original_close = pinned.close

            def refuse():
                raise BufferError("still viewed")

            pinned.close = refuse
            try:
                for name in names[1:]:
                    consumer.attach(name, (8,), "float32", offset=_SLAB_HEADER_SIZE)
                # The old code break-ed on the pinned head and never trimmed:
                # the cache grew one entry per attach.  Now the trim skips the
                # pinned entry and closes the next-oldest instead, keeping the
                # cache at limit + pinned.
                assert len(consumer._attached) <= 3
                assert names[0] in consumer._attached  # pinned: kept
                assert names[1] not in consumer._attached  # trimmed instead
            finally:
                pinned.close = original_close
        finally:
            consumer.shutdown()
            producer.shutdown()

    def test_attach_counters_track_hits_and_opens(self):
        producer = SharedMemoryPool(name_prefix="cnt-prod")
        consumer = SharedMemoryPool(attach_by_name=True)
        try:
            tensor = producer.allocate_tensor((8,), "float32")
            name = tensor.segment.name
            for _ in range(3):
                consumer.attach(name, (8,), "float32", offset=_SLAB_HEADER_SIZE)
            assert consumer.attach_opens == 1
            assert consumer.attach_cache_hits == 2
            assert consumer.mmap_total == 1
        finally:
            consumer.shutdown()
            producer.shutdown()


# ---------------------------------------------------------------------------
# zero-copy inline payloads (satellite 3)
# ---------------------------------------------------------------------------


class TestZeroCopyInline:
    def test_inline_holds_a_view_not_a_copy(self):
        array = np.arange(16, dtype=np.float32)
        payload = TensorPayload.inline(from_numpy(array))
        assert isinstance(payload.inline_bytes, memoryview)
        assert np.shares_memory(
            np.frombuffer(payload.inline_bytes, dtype=np.float32), array
        )
        assert payload.payload_nbytes >= array.nbytes

    def test_inline_pickles_and_roundtrips(self):
        import pickle

        payload = TensorPayload.inline(from_numpy(np.arange(5, dtype=np.int64)))
        clone = pickle.loads(pickle.dumps(payload))
        assert isinstance(clone.inline_bytes, bytes)
        np.testing.assert_array_equal(
            clone.unpack().numpy(), np.arange(5, dtype=np.int64)
        )


# ---------------------------------------------------------------------------
# cross-process: recycled names hit the consumer's attach cache
# ---------------------------------------------------------------------------


def _reuse_remote_trainer(address, result_queue):
    """Separate OS process: consume several epochs, report attach stats."""
    import repro as repro_child

    consumer = repro_child.attach(address, max_epochs=3, receive_timeout=30)
    batches = 0
    for batch in consumer:
        batch["index"].numpy()  # touch the mapped bytes
        batches += 1
    pool = consumer.pool
    stats = (batches, pool.attach_opens, pool.attach_cache_hits)
    consumer.close()
    result_queue.put(stats)


class _IndexDataset:
    """Each item carries its own index (mirrors the sharding-test helper)."""

    def __len__(self):
        return 32

    def __getitem__(self, index):
        return {"index": np.array([index], dtype=np.int64)}


@pytest.mark.multiprocess
class TestTcpAttachCacheReuse:
    def test_recycled_names_hit_the_consumer_attach_cache(self):
        from repro.data import DataLoader

        loader = DataLoader(_IndexDataset(), batch_size=4)
        session = repro.serve(
            loader,
            address="tcp://127.0.0.1:0",
            epochs=3,
            start=False,
        )
        result_queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_reuse_remote_trainer, args=(session.address, result_queue)
        )
        child.start()
        try:
            session.start()
            batches, attach_opens, attach_hits = result_queue.get(timeout=60)
        finally:
            child.join(timeout=30)
            if child.is_alive():
                child.terminate()
            session.shutdown()
        assert child.exitcode == 0
        assert batches == (32 // 4) * 3
        # One segment per batch now, and the producer recycles names, so the
        # consumer's attach cache must hit: far fewer opens than batches.
        assert attach_opens + attach_hits == batches
        assert attach_hits > 0
        assert attach_opens < batches
        # Producer side: the free list went warm, so segment creation stopped
        # well short of one-per-batch.
        assert session.pool.segments_created < batches
        assert session.pool.segment_reuse_hits > 0
        assert session.pool.bytes_in_flight == 0
        assert session.pool.free_bytes == 0  # shutdown drained the free list
