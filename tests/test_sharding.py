"""Sharded producer groups: disjoint coverage, deterministic merge, churn,
cross-process attach, cache-on-shards replay, and the end-to-end ``set_epoch``
wiring the groups rely on."""

import multiprocessing
import threading
import time

import numpy as np
import pytest

import repro
from repro.core import ConsumerConfig, GroupConsumer, ShardedLoaderSession, TensorConsumer
from repro.core.group import describe_address, member_address
from repro.core.session import SharedLoaderSession
from repro.data import BatchSampler, DataLoader, SequentialSampler
from repro.data.dataset import Dataset
from repro.messaging import InProcHub
from repro.messaging import endpoint as endpoints
from repro.messaging.message import MessageKind
from repro.messaging.sockets import PubSocket, PullSocket
from repro.tensor import BatchPayload, SharedMemoryPool, from_numpy


class IndexDataset(Dataset):
    """Each item carries its own dataset index, so tests can audit coverage."""

    def __init__(self, n):
        self.n = n

    def __len__(self):
        return self.n

    def __getitem__(self, index):
        return {"index": np.array([index], dtype=np.int64)}


def index_loader(n=24, batch_size=4, shuffle=False, seed=0, **kwargs):
    return DataLoader(
        IndexDataset(n), batch_size=batch_size, shuffle=shuffle, seed=seed, **kwargs
    )


def batch_indices(batch):
    return [int(x) for x in batch["index"].numpy().ravel()]


def consume_epochs(consumer):
    """Collect {epoch: [sample indices in delivery order]} via iter_batches."""
    per_epoch = {}
    for payload, batch in consumer.iter_batches():
        per_epoch.setdefault(payload.epoch, []).extend(batch_indices(batch))
    return per_epoch


def consume_flat(consumer):
    return [i for batch in consumer for i in batch_indices(batch)]


# ---------------------------------------------------------------------------
# set_epoch wiring (no sharding): deterministic per-epoch permutations
# ---------------------------------------------------------------------------


class TestSetEpochWiring:
    def test_two_same_seed_producers_publish_identical_epochs(self):
        """Two producers with equal seeds emit identical sequences per epoch
        and different sequences across epochs (the sharding prerequisite;
        previously RandomSampler.set_epoch existed but was never called)."""
        sequences = {}
        for name in ("a", "b"):
            session = repro.serve(
                index_loader(n=32, shuffle=True, seed=11),
                address=f"inproc://set-epoch-{name}",
                epochs=2,
                start=False,
            )
            consumer = session.consumer(ConsumerConfig(max_epochs=2))
            session.start()
            sequences[name] = consume_epochs(consumer)
            session.shutdown()
        assert set(sequences["a"]) == {0, 1}
        assert sequences["a"][0] == sequences["b"][0]
        assert sequences["a"][1] == sequences["b"][1]
        assert sequences["a"][0] != sequences["a"][1]  # epochs still reshuffle
        assert sorted(sequences["a"][0]) == list(range(32))
        assert sorted(sequences["a"][1]) == list(range(32))

    def test_loader_set_epoch_noop_for_sequential(self):
        loader = index_loader(n=8)
        loader.set_epoch(3)  # must not raise
        assert [i for b in loader for i in batch_indices(b)] == list(range(8))


# ---------------------------------------------------------------------------
# shard coverage
# ---------------------------------------------------------------------------


class TestShardCoverage:
    def test_every_sample_exactly_once_per_epoch(self):
        session = repro.serve(
            index_loader(n=37, batch_size=4, shuffle=True, seed=5),
            address="inproc://cover",
            shards=3,
            epochs=2,
            start=False,
        )
        consumer = repro.attach("inproc://cover", max_epochs=2)
        assert isinstance(consumer, GroupConsumer)
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        assert len(seen) == 74
        epoch0, epoch1 = seen[:37], seen[37:]
        assert sorted(epoch0) == list(range(37))
        assert sorted(epoch1) == list(range(37))
        assert epoch0 != epoch1  # shards reshuffled together at the boundary

    def test_contiguous_mode_covers_too(self):
        session = repro.serve(
            index_loader(n=20, batch_size=3),
            address="inproc://cover-contig",
            shards=4,
            shard_mode="contiguous",
            epochs=1,
            start=False,
        )
        consumer = repro.attach("inproc://cover-contig", max_epochs=1)
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        assert sorted(seen) == list(range(20))


# ---------------------------------------------------------------------------
# deterministic in-order merge
# ---------------------------------------------------------------------------


class TestInOrderMerge:
    def test_global_order_is_batch_index_then_shard(self):
        n, batch_size, shards = 30, 3, 3
        loader = index_loader(n=n, batch_size=batch_size)
        # The reference order: each shard loader's batches, merged by
        # (batch index, shard rank).
        shard_batches = []
        for rank in range(shards):
            shard_loader = loader.shard(rank, shards)
            shard_loader.set_epoch(0)
            shard_batches.append([batch_indices(b) for b in shard_loader])
        expected = []
        for batch_index in range(max(len(b) for b in shard_batches)):
            for rank in range(shards):
                if batch_index < len(shard_batches[rank]):
                    expected.extend(shard_batches[rank][batch_index])

        session = repro.serve(
            index_loader(n=n, batch_size=batch_size),
            address="inproc://in-order",
            shards=shards,
            epochs=1,
            start=False,
        )
        consumer = repro.attach("inproc://in-order", max_epochs=1)
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        assert seen == expected

    def test_two_trainers_see_identical_order(self):
        session = repro.serve(
            index_loader(n=24, shuffle=True, seed=2),
            address="inproc://two-trainers",
            shards=2,
            epochs=1,
            start=False,
        )
        first = repro.attach("inproc://two-trainers", max_epochs=1)
        second = repro.attach("inproc://two-trainers", max_epochs=1)
        results = {}

        def train(name, consumer):
            results[name] = consume_flat(consumer)

        threads = [
            threading.Thread(target=train, args=(name, consumer))
            for name, consumer in (("first", first), ("second", second))
        ]
        for thread in threads:
            thread.start()
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        session.shutdown()
        assert results["first"] == results["second"]
        assert sorted(results["first"]) == list(range(24))


class TestAnyInterleave:
    def test_arrival_order_still_epoch_aligned(self):
        session = repro.serve(
            index_loader(n=24, batch_size=4),
            address="inproc://any-order",
            shards=3,
            epochs=2,
            start=False,
        )
        consumer = repro.attach("inproc://any-order", max_epochs=2, interleave="any")
        assert isinstance(consumer, GroupConsumer)
        assert consumer.interleave == "any"
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        # The epoch barrier: the first 24 samples are exactly epoch 0's set,
        # whatever their arrival order.
        assert sorted(seen[:24]) == list(range(24))
        assert sorted(seen[24:]) == list(range(24))

    def test_member_failure_is_surfaced_not_swallowed(self):
        """A member that dies with an exception (receive timeout — not a
        clean shutdown) must propagate out of the "any" merge; swallowing it
        would silently drop a whole shard from training."""
        from repro.messaging.errors import TimeoutError_

        pool = SharedMemoryPool()
        hub = InProcHub()
        pubs = [PubSocket(hub, f"m{k}/data") for k in (0, 1)]
        controls = [PullSocket(hub, f"m{k}/control") for k in (0, 1)]
        members = [
            TensorConsumer(
                hub=hub,
                pool=pool,
                config=ConsumerConfig(
                    address=f"m{k}", consumer_id="c", max_epochs=1, receive_timeout=2
                ),
            )
            for k in (0, 1)
        ]
        for k, pub in enumerate(pubs):
            pub.send(
                MessageKind.REPLY,
                body={"consumer_id": "c", "admitted_epoch": 0},
                topic="consumer/c",
            )
            staged = {"x": pool.share_tensor(from_numpy(np.full(2, k, dtype=np.float32)))}
            pub.send(
                MessageKind.BATCH,
                body=BatchPayload.pack(staged, batch_index=0, epoch=0),
                topic="broadcast",
            )
        # Member 0 finishes its epoch cleanly; member 1 goes silent mid-epoch.
        pubs[0].send(MessageKind.EPOCH_END, body={"epoch": 0, "batches": 1}, topic="broadcast")
        group = GroupConsumer(members, interleave="any")
        delivered = []
        with pytest.raises(TimeoutError_):
            for batch in group:
                delivered.append(batch["x"])
        assert len(delivered) == 2  # both members' batches arrived first
        # Both delivered batches were trained on and acknowledged before the
        # failure surfaced.
        assert controls[0].drain()
        assert controls[1].drain()
        group.close()
        pool.shutdown()


# ---------------------------------------------------------------------------
# member stop / churn
# ---------------------------------------------------------------------------


class TestMemberChurn:
    def test_member_stop_drains_all_pool_bytes(self):
        session = repro.serve(
            index_loader(n=60, batch_size=2),
            address="inproc://churn",
            shards=3,
            epochs=1,
            start=False,
        )
        consumer = repro.attach("inproc://churn", max_epochs=1)
        collected = []
        done = threading.Event()

        def train():
            for batch in consumer:
                collected.append(batch_indices(batch))
                if len(collected) == 6:
                    # Kill one member mid-epoch; the rest must keep serving.
                    session.members[0].stop()
            done.set()

        thread = threading.Thread(target=train)
        thread.start()
        session.start()
        assert done.wait(timeout=30)
        thread.join(timeout=5)
        # Shards 1 and 2 finished their full shard; shard 0 stopped early.
        seen = [i for batch in collected for i in batch]
        shard1 = set(range(60))
        full_members = [
            set(batch_indices(b))
            for rank in (1, 2)
            for b in session.members[rank].loader
        ]
        for member_batch in full_members:
            assert member_batch <= set(seen) or member_batch <= shard1
        # Poll BEFORE shutdown (which zeroes the pool): member join() paths
        # must have returned every hold on their own.
        deadline = time.time() + 10
        while time.time() < deadline and (
            session.stats()["producer"]["bytes_in_flight"]
            or session.stats()["producer"]["cached_bytes"]
        ):
            time.sleep(0.01)
        stats = session.stats()
        assert stats["producer"]["bytes_in_flight"] == 0
        assert stats["producer"]["cached_bytes"] == 0
        session.shutdown()
        assert session.pool.live_segments == 0

    def test_surviving_members_serve_their_full_shards(self):
        session = repro.serve(
            index_loader(n=30, batch_size=2),
            address="inproc://churn-cover",
            shards=3,
            epochs=1,
            start=False,
        )
        # Stop member 0 before it publishes anything at all.
        session.members[0].stop()
        consumer = repro.attach("inproc://churn-cover", max_epochs=1)
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        shard0 = {i for b in session.members[0].loader for i in batch_indices(b)}
        assert set(seen) == set(range(30)) - shard0
        assert session.pool.live_segments == 0


class TestMinEpochLimit:
    def test_skipped_pre_group_epochs_do_not_count_toward_max_epochs(self):
        """A member admitted before the group's start epoch must not burn its
        max_epochs budget on epochs the merge skips — that would end its
        stream early and leave later epochs served by a subset of shards."""
        pool = SharedMemoryPool()
        hub = InProcHub()
        pub = PubSocket(hub, "tensorsocket/data")
        control = PullSocket(hub, "tensorsocket/control")
        consumer = TensorConsumer(
            hub=hub,
            pool=pool,
            config=ConsumerConfig(consumer_id="m", max_epochs=1, receive_timeout=5),
        )
        # The producer admitted this member at epoch 0...
        pub.send(
            MessageKind.REPLY,
            body={"consumer_id": "m", "admitted_epoch": 0},
            topic="consumer/m",
        )
        # ...but the group starts at epoch 1: epoch 0 closes without batches.
        pub.send(MessageKind.EPOCH_END, body={"epoch": 0, "batches": 0}, topic="broadcast")
        staged = {"x": pool.share_tensor(from_numpy(np.zeros(4, dtype=np.float32)))}
        payload = BatchPayload.pack(staged, batch_index=0, epoch=1)
        pub.send(MessageKind.BATCH, body=payload, topic="broadcast")
        pub.send(MessageKind.EPOCH_END, body={"epoch": 1, "batches": 1}, topic="broadcast")
        got = [batch for _payload, batch in consumer.iter_batches(min_epoch=1)]
        # Without the min_epoch floor on epoch counting, EPOCH_END(0) eats the
        # one-epoch budget and this list is empty.
        assert len(got) == 1
        assert consumer.batches_consumed == 1
        assert control.drain()  # the epoch-1 batch was acknowledged
        consumer.close()
        pool.shutdown()


# ---------------------------------------------------------------------------
# epoch cache on shards
# ---------------------------------------------------------------------------


class TestCacheOnShards:
    def test_repeat_epochs_replay_each_members_shard_cache(self):
        session = repro.serve(
            index_loader(n=24, batch_size=4),
            address="inproc://shard-cache",
            shards=2,
            epochs=3,
            cache="all",
            start=False,
        )
        consumer = repro.attach("inproc://shard-cache", max_epochs=3)
        session.start()
        seen = consume_flat(consumer)
        session.shutdown()
        assert len(seen) == 72
        for epoch in range(3):
            assert sorted(seen[epoch * 24:(epoch + 1) * 24]) == list(range(24))
        stats = session.stats()
        # Epoch 0 loaded 6 batches (3 per member); epochs 1-2 were pure
        # cache hits republished from each member's shard cache.
        assert stats["producer"]["batches_loaded"] == 6
        assert stats["producer"]["cache"]["hits"] == 12
        assert stats["producer"]["cached_bytes"] == 0  # cleared at shutdown
        assert session.pool.live_segments == 0

    def test_cache_budget_is_divided_across_members(self):
        """cache_bytes is the GROUP total; each member caches only its shard,
        so it gets an equal slice of the budget instead of the whole thing."""
        session = repro.serve(
            index_loader(n=16),
            address="inproc://shard-budget",
            shards=2,
            cache="lru",
            cache_bytes=1000,
            start=False,
        )
        try:
            assert [m.cache.budget_bytes for m in session.members] == [500, 500]
            assert all(m.config.cache_bytes == 500 for m in session.members)
        finally:
            session.shutdown()


# ---------------------------------------------------------------------------
# session / API surface
# ---------------------------------------------------------------------------


class TestGroupSessionSurface:
    def test_serve_routes_shards_to_group_session(self):
        session = repro.serve(
            index_loader(), address="inproc://surface", shards=2, start=False
        )
        try:
            assert isinstance(session, ShardedLoaderSession)
            assert len(session.members) == 2
            assert SharedLoaderSession.at("inproc://surface") is session
        finally:
            session.shutdown()

    def test_plain_serve_and_attach_unchanged(self):
        session = repro.serve(index_loader(), address="inproc://plain", start=False)
        try:
            assert isinstance(session, SharedLoaderSession)
            consumer = repro.attach("inproc://plain")
            assert isinstance(consumer, TensorConsumer)
        finally:
            session.shutdown()

    def test_stats_has_per_member_rows(self):
        session = repro.serve(
            index_loader(n=12), address="inproc://stats", shards=3, epochs=1, start=False
        )
        consumer = repro.attach("inproc://stats", max_epochs=1)
        session.start()
        consume_flat(consumer)
        stats = session.stats()
        try:
            assert stats["shards"] == 3
            assert [row["shard"] for row in stats["members"]] == [0, 1, 2]
            assert all(row["role"] == "producer" for row in stats["members"])
            total = sum(row["payloads_published"] for row in stats["members"])
            assert stats["producer"]["payloads_published"] == total
            assert stats["producer"]["role"] == "producer-group"
            group_stats = stats["consumers"][0]
            assert group_stats["role"] == "group-consumer"
            assert group_stats["shards"] == 3
            assert len(group_stats["members"]) == 3
            assert group_stats["batches_consumed"] == sum(
                row["batches_consumed"] for row in group_stats["members"]
            )
        finally:
            session.shutdown()

    def test_describe_manifest_served_at_logical_address(self):
        session = repro.serve(
            index_loader(), address="inproc://manifest", shards=2, start=False
        )
        try:
            endpoint = endpoints.connect("inproc://manifest")
            manifest = describe_address(endpoint.hub, "inproc://manifest", timeout=5.0)
            assert manifest["shards"] == 2
            assert manifest["member_addresses"] == [
                member_address("inproc://manifest", 0),
                member_address("inproc://manifest", 1),
            ]
        finally:
            session.shutdown()

    def test_plain_session_describes_one_shard(self):
        session = repro.serve(index_loader(), address="inproc://plain-manifest", start=False)
        try:
            endpoint = endpoints.connect("inproc://plain-manifest")
            manifest = describe_address(endpoint.hub, "inproc://plain-manifest", timeout=5.0)
            assert manifest["shards"] == 1
        finally:
            session.shutdown()

    def test_address_reusable_after_shutdown(self):
        for _ in range(2):
            session = repro.serve(
                index_loader(), address="inproc://reuse", shards=2, start=False
            )
            session.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            repro.serve(index_loader(), address="inproc://bad", shards=0)
        with pytest.raises(TypeError):
            ShardedLoaderSession(object(), address="inproc://bad", shards=2)
        with pytest.raises(ValueError):
            ShardedLoaderSession(index_loader(), address="inproc://bad", shards=1)
        sampler = SequentialSampler(IndexDataset(8))
        loader = DataLoader(IndexDataset(8), batch_sampler=BatchSampler(sampler, 4))
        with pytest.raises(ValueError):
            loader.shard(0, 2)
        with pytest.raises(ValueError):
            ConsumerConfig(interleave="sideways")

    def test_empty_shards_rejected_at_construction(self):
        """An empty shard's member would finish every epoch instantly and
        vanish, wedging later attaches on a member that never admits them."""
        with pytest.raises(ValueError, match="empty"):
            # contiguous over 6 samples in 4 shards: ceil(6/4)=2 per block,
            # shard 3 gets positions [6, 6) — nothing.
            repro.serve(
                index_loader(n=6, batch_size=2),
                address="inproc://empty-contig",
                shards=4,
                shard_mode="contiguous",
                start=False,
            )
        with pytest.raises(ValueError, match="empty"):
            # strided with more shards than samples: shard 3 is empty.
            repro.serve(
                index_loader(n=3, batch_size=1),
                address="inproc://empty-strided",
                shards=4,
                start=False,
            )
        # The failed binds released their addresses; serving again works.
        session = repro.serve(
            index_loader(n=8, batch_size=2),
            address="inproc://empty-contig",
            shards=2,
            start=False,
        )
        session.shutdown()

    def test_consumer_after_shutdown_rejected(self):
        session = repro.serve(
            index_loader(), address="inproc://closed", shards=2, start=False
        )
        session.shutdown()
        with pytest.raises(RuntimeError):
            session.consumer()


# ---------------------------------------------------------------------------
# cross-process tcp:// sharded attach
# ---------------------------------------------------------------------------


def _sharded_remote_trainer(address, result_queue):
    """Runs in a separate OS process: attach to a sharded tcp:// group."""
    import repro as repro_child

    consumer = repro_child.attach(address, max_epochs=1, receive_timeout=30)
    seen = []
    for batch in consumer:
        seen.extend(int(x) for x in batch["index"].numpy().ravel())
    kind = type(consumer).__name__
    consumer.close()
    result_queue.put((kind, seen))


@pytest.mark.multiprocess
class TestTcpSharded:
    def test_two_process_sharded_attach(self):
        session = repro.serve(
            index_loader(n=24, batch_size=4),
            address="tcp://127.0.0.1:0",
            shards=3,
            epochs=1,
            start=False,
        )
        result_queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_sharded_remote_trainer, args=(session.address, result_queue)
        )
        child.start()
        try:
            session.start()
            kind, seen = result_queue.get(timeout=60)
        finally:
            child.join(timeout=30)
            if child.is_alive():
                child.terminate()
            session.shutdown()
        assert child.exitcode == 0
        assert kind == "GroupConsumer"  # discovered via the describe channel
        assert sorted(seen) == list(range(24))
        assert session.pool.live_segments == 0
