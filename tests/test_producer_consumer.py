"""Integration tests of the runnable TensorSocket library (threaded real mode).

These exercise the complete protocol: registration, zero-copy payload
delivery, acknowledgements and memory release, epoch boundaries, consumer
departure, flexible batch sizing, and shutdown.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    ConsumerConfig,
    ProducerConfig,
    SharedLoaderSession,
    TensorConsumer,
    TensorProducer,
)
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.messaging import InProcHub
from repro.tensor import SharedMemoryPool


def small_loader(size=48, batch_size=8, image_size=16):
    dataset = SyntheticImageDataset(size, image_size=image_size, payload_bytes=32)
    pipeline = Compose([DecodeJpeg(height=image_size, width=image_size), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=batch_size, transform=pipeline)


def run_consumer(session, name, results, max_epochs=1, batch_size=None, delay=0.0,
                 per_batch_sleep=0.0):
    """Consume every batch, recording a digest of the tensor contents."""
    if delay:
        time.sleep(delay)
    consumer = session.consumer(
        ConsumerConfig(
            consumer_id=name,
            max_epochs=max_epochs,
            batch_size=batch_size,
            receive_timeout=20,
        )
    )
    digests = []
    for batch in consumer:
        digests.append(
            (batch["index"].tolist(), round(float(batch["image"].numpy().sum()), 3))
        )
        if per_batch_sleep:
            time.sleep(per_batch_sleep)
    results[name] = digests
    consumer.close()


@pytest.fixture
def session():
    session = SharedLoaderSession(
        small_loader(),
        producer_config=ProducerConfig(epochs=1, heartbeat_timeout=5, poll_interval=0.002),
    )
    yield session
    session.shutdown()


class TestSingleConsumer:
    def test_consumer_receives_every_batch_once(self, session):
        results = {}
        session.start()
        run_consumer(session, "c0", results)
        assert len(results["c0"]) == 6
        seen_indices = [i for indices, _ in results["c0"] for i in indices]
        assert sorted(seen_indices) == list(range(48))

    def test_memory_is_released_after_the_run(self, session):
        results = {}
        session.start()
        run_consumer(session, "c0", results)
        # Allow the producer to process the final acknowledgements.
        deadline = time.time() + 5
        while session.pool.live_segments and time.time() < deadline:
            time.sleep(0.05)
        assert session.pool.live_segments == 0

    def test_producer_statistics(self, session):
        results = {}
        session.start()
        run_consumer(session, "c0", results)
        deadline = time.time() + 5
        while session.producer.payloads_published < 6 and time.time() < deadline:
            time.sleep(0.05)
        assert session.producer.payloads_published == 6
        assert session.producer.batches_loaded == 6


class TestMultipleConsumers:
    def test_all_consumers_see_identical_data(self, session):
        results = {}
        threads = [
            threading.Thread(target=run_consumer, args=(session, f"c{i}", results))
            for i in range(3)
        ]
        # Register all consumers before the producer starts publishing so none
        # of them is parked until the next epoch by the admission policy.
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(not t.is_alive() for t in threads)
        assert results["c0"] == results["c1"] == results["c2"]
        assert len(results["c0"]) == 6

    def test_consumers_share_memory_not_copies(self):
        hub = InProcHub()
        pool = SharedMemoryPool()
        producer = TensorProducer(
            small_loader(size=16, batch_size=8),
            hub=hub,
            pool=pool,
            config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        received = {}

        def consume(name):
            consumer = TensorConsumer(
                hub=hub, pool=pool, config=ConsumerConfig(consumer_id=name, max_epochs=1)
            )
            received[name] = [batch["image"] for batch in consumer]
            consumer.close()

        threads = [threading.Thread(target=consume, args=(f"c{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        for _ in producer:
            pass
        producer.join()
        for thread in threads:
            thread.join(timeout=20)
        # The tensors observed by both consumers are views of the same buffers.
        for a, b in zip(received["c0"], received["c1"]):
            assert a.shares_memory_with(b)
        pool.shutdown()

    def test_multi_epoch_run(self):
        session = SharedLoaderSession(
            small_loader(size=24, batch_size=8),
            producer_config=ProducerConfig(epochs=3, poll_interval=0.002),
        )
        results = {}
        session.start()
        run_consumer(session, "c0", results, max_epochs=3)
        session.shutdown()
        assert len(results["c0"]) == 9  # 3 batches/epoch x 3 epochs


class TestDynamicMembership:
    def test_consumer_leaving_does_not_block_others(self):
        session = SharedLoaderSession(
            small_loader(size=64, batch_size=8),
            producer_config=ProducerConfig(epochs=1, heartbeat_timeout=3, poll_interval=0.002),
        )
        results = {}

        def quitting_consumer():
            consumer = session.consumer(
                ConsumerConfig(consumer_id="quitter", max_epochs=1, receive_timeout=20)
            )
            for index, _batch in enumerate(consumer):
                if index >= 2:
                    break
            consumer.close()

        quitter = threading.Thread(target=quitting_consumer)
        stayer = threading.Thread(target=run_consumer, args=(session, "stayer", results))
        # Register both consumers before the producer starts publishing so the
        # test is not sensitive to registration timing.
        quitter.start()
        stayer.start()
        time.sleep(0.3)
        session.start()
        quitter.join(timeout=30)
        stayer.join(timeout=30)
        assert not stayer.is_alive()
        assert len(results["stayer"]) == 8
        session.shutdown()

    def test_late_consumer_waits_for_next_epoch(self):
        session = SharedLoaderSession(
            small_loader(size=64, batch_size=8),
            producer_config=ProducerConfig(
                epochs=2, rubberband_fraction=0.0, poll_interval=0.002
            ),
        )
        results = {}
        session.start()
        early = threading.Thread(
            target=run_consumer,
            args=(session, "early", results),
            kwargs={"max_epochs": 2, "per_batch_sleep": 0.08},
        )
        late = threading.Thread(
            target=run_consumer,
            args=(session, "late", results),
            kwargs={"max_epochs": 1, "delay": 0.3},
        )
        early.start()
        late.start()
        early.join(timeout=40)
        late.join(timeout=40)
        assert not early.is_alive() and not late.is_alive()
        assert len(results["early"]) == 16
        # The late joiner only participates once a fresh epoch starts, so it
        # sees at most one full epoch of batches.
        assert 0 < len(results["late"]) <= 8
        session.shutdown()

    def test_producer_waits_for_first_consumer(self):
        session = SharedLoaderSession(
            small_loader(size=16, batch_size=8),
            producer_config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        results = {}
        session.start()
        time.sleep(0.2)
        # Nothing should have been published while no consumer is registered.
        assert session.producer.payloads_published == 0
        run_consumer(session, "c0", results)
        assert len(results["c0"]) == 2
        session.shutdown()


class TestFlexibleBatchingIntegration:
    def test_consumers_receive_their_requested_batch_sizes(self):
        config = ProducerConfig(
            epochs=1,
            flexible_batching=True,
            producer_batch_size=32,
            poll_interval=0.002,
        )
        session = SharedLoaderSession(small_loader(size=64, batch_size=16), producer_config=config)
        sizes = {}

        def consume(name, batch_size):
            consumer = session.consumer(
                ConsumerConfig(
                    consumer_id=name, batch_size=batch_size, max_epochs=1, receive_timeout=20
                )
            )
            observed = set()
            total = 0
            for batch in consumer:
                observed.add(batch["image"].shape[0])
                total += batch["image"].shape[0]
            sizes[name] = (observed, total)
            consumer.close()

        # Register both consumers before the producer starts so the flexible
        # batcher is built with both batch sizes (avoids admission races).
        threads = [
            threading.Thread(target=consume, args=("small", 8)),
            threading.Thread(target=consume, args=("large", 16)),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        session.start()
        for thread in threads:
            thread.join(timeout=40)
        assert all(not t.is_alive() for t in threads)
        session.shutdown()
        assert sizes["small"][0] == {8}
        assert sizes["large"][0] == {16}
        # Both consumers traverse the same amount of underlying data (64 rows,
        # modulo the bounded repetition flexible batching allows).
        assert sizes["small"][1] >= 64
        assert sizes["large"][1] >= 64


class TestShutdownAndErrors:
    def test_join_announces_shutdown_to_consumers(self):
        hub = InProcHub()
        pool = SharedMemoryPool()
        producer = TensorProducer(
            small_loader(size=16, batch_size=8),
            hub=hub,
            pool=pool,
            config=ProducerConfig(epochs=1, poll_interval=0.002),
        )
        consumer = TensorConsumer(hub=hub, pool=pool, config=ConsumerConfig(receive_timeout=20))
        batches = []

        def consume():
            for batch in consumer:
                batches.append(batch)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.1)
        for _ in producer:
            pass
        producer.join()
        thread.join(timeout=20)
        assert not thread.is_alive()
        assert len(batches) == 2
        consumer.close()
        pool.shutdown()

    def test_closed_consumer_cannot_be_iterated(self):
        hub = InProcHub()
        consumer = TensorConsumer(hub=hub, pool=SharedMemoryPool(), config=ConsumerConfig())
        consumer.close()
        with pytest.raises(RuntimeError):
            iter(consumer).__next__()

    def test_stop_ends_the_producer_early(self):
        session = SharedLoaderSession(
            small_loader(size=64, batch_size=8),
            producer_config=ProducerConfig(epochs=None, poll_interval=0.002),
        )
        results = {}
        session.start()
        consumer_thread = threading.Thread(
            target=run_consumer, args=(session, "c0", results), kwargs={"max_epochs": 1}
        )
        consumer_thread.start()
        consumer_thread.join(timeout=30)
        session.producer.stop()
        session.shutdown()
        assert not session.is_running
