"""Tests for the observability layer: registry, tracing, stall, service.

Covers the four surfaces ``repro.obs`` exposes:

* the metrics registry primitives (per-thread accumulation, weakly-attached
  gauges, log-bucket histograms, in-place reset, the kill switch);
* batch-lifecycle tracing — span completeness end-to-end on ``inproc://``,
  cross-process propagation over ``tcp://`` (producer-side spans must carry
  the consumer's ``delivered``/``trained``/``acked`` stamps, returned through
  the ACK body), and ring bounding under sustained multi-threaded load;
* stall attribution (phase seconds must account for the epoch wall);
* the ``{address}/metrics`` Rep channel via :func:`repro.obs.fetch_metrics`,
  and the deprecated legacy ``stats()`` views staying shape-compatible.
"""

import gc
import io
import json
import multiprocessing
import os
import threading

import pytest

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.obs import RING, STAGES, SpanRing, record_span, span_complete
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    set_enabled,
)
from repro.obs.naming import CONSUMER_KEYS, PRODUCER_KEYS, to_legacy
from repro.obs.service import fetch_metrics
from repro.obs.stall import attribution


def tiny_loader(size=24, batch_size=4):
    dataset = SyntheticImageDataset(size, image_size=8, payload_bytes=16)
    pipeline = Compose([DecodeJpeg(height=8, width=8), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=batch_size, transform=pipeline)


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_accumulates_across_threads(self):
        c = Counter("t.counter")
        n_threads, n_incs = 4, 1000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * n_incs

    def test_inc_amount_and_reset(self):
        c = Counter("t.amount")
        c.inc(2.5)
        c.inc(0.5)
        assert c.value() == 3.0
        c.reset()
        assert c.value() == 0.0
        c.inc()
        assert c.value() == 1.0

    def test_kill_switch_disables_recording(self):
        c = Counter("t.killed")
        previous = set_enabled(False)
        try:
            c.inc()
            assert c.value() == 0.0
        finally:
            set_enabled(previous)
        c.inc()
        assert c.value() == 1.0


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("t.gauge")
        g.set(42)
        assert g.value() == 42.0

    def test_attached_sources_sum_while_owner_lives(self):
        class Owner:
            bytes_used = 7

        g = Gauge("t.attached")
        owner = Owner()
        g.attach(owner, lambda o: o.bytes_used)
        assert g.value() == 7.0
        # A dead owner's source is pruned, not an error.
        del owner
        gc.collect()
        assert g.value() == 0.0


class TestHistogram:
    def test_percentile_brackets_observation(self):
        h = Histogram("t.hist")
        for _ in range(100):
            h.observe(0.003)
        # Log-spaced buckets: the geometric-midpoint estimate lands within
        # one bucket width (10^0.25 per step) of the true value.
        assert 0.0015 < h.percentile(0.5) < 0.006
        assert h.count() == 100
        assert abs(h.sum() - 0.3) < 1e-9

    def test_snapshot_has_percentile_columns(self):
        h = Histogram("t.snap")
        h.observe(0.01)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "p50", "p95", "p99"}

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram("t.overflow")
        h.observe(1e6)
        assert h.count() == 1
        assert h.bucket_counts()[-1] == 1


class TestRegistry:
    def test_get_or_create_shares_one_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a.b")

    def test_reset_zeroes_in_place(self):
        # Module-level handles must stay bound across reset() — a reset that
        # replaced instruments would silently disconnect instrumentation.
        reg = MetricsRegistry()
        handle = reg.counter("a.reset")
        handle.inc()
        reg.reset()
        assert reg.counter("a.reset") is handle
        handle.inc()
        assert handle.value() == 1.0

    def test_prometheus_text_grammar(self):
        reg = MetricsRegistry()
        reg.counter("repro.test.count").inc(3)
        reg.gauge("repro.test.level").set(5)
        hist = reg.histogram("repro.test.lat")
        hist.observe(0.01)
        text = reg.prometheus_text()
        assert "# TYPE repro_test_count counter" in text
        assert "repro_test_count 3" in text
        assert "# TYPE repro_test_level gauge" in text
        assert "# TYPE repro_test_lat histogram" in text
        assert 'repro_test_lat_bucket{le="+Inf"} 1' in text
        assert "repro_test_lat_count 1" in text


# ---------------------------------------------------------------------------
# span ring + chrome-trace export
# ---------------------------------------------------------------------------


def _complete_stages(start=100.0, step=0.01):
    return {name: start + i * step for i, name in enumerate(STAGES)}


class TestSpanRing:
    def test_bounded_under_sustained_multithreaded_load(self):
        ring = SpanRing(capacity=64)
        n_threads, n_spans = 8, 500

        def worker(rank):
            for i in range(n_spans):
                record_span(
                    epoch=rank, batch_index=i, stages=_complete_stages(), ring=ring
                )

        threads = [
            threading.Thread(target=worker, args=(rank,)) for rank in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ring) == 64  # bounded: old spans evicted, never grown
        assert ring.recorded == n_threads * n_spans
        assert len(ring.spans()) == 64
        assert len(ring.spans(limit=10)) == 10

    def test_span_complete_requires_all_seven_stages(self):
        stages = _complete_stages()
        assert span_complete({"stages": stages})
        partial = dict(stages)
        del partial["trained"]
        assert not span_complete({"stages": partial})

    def test_chrome_trace_export_emits_phase_events(self):
        ring = SpanRing(capacity=8)
        record_span(epoch=0, batch_index=0, stages=_complete_stages(), ring=ring)
        handle = io.StringIO()
        written = obs_trace.export_chrome_trace(ring.spans(), handle)
        events = [json.loads(line) for line in handle.getvalue().splitlines()]
        assert written == len(events) == len(obs_trace.PHASES)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0


# ---------------------------------------------------------------------------
# end-to-end: inproc trace completeness + stall attribution
# ---------------------------------------------------------------------------


class TestEndToEndTracing:
    def test_inproc_epoch_records_complete_monotonic_spans(self):
        RING.clear()
        session = repro.serve(
            tiny_loader(), address="inproc://obs-e2e", epochs=1, start=False
        )
        try:
            consumer = session.consumer(
                ConsumerConfig(
                    consumer_id="obs-e2e-c", max_epochs=1, receive_timeout=20
                )
            )
            try:
                session.start()
                batches = sum(1 for _ in consumer)
            finally:
                consumer.close()
        finally:
            session.shutdown()
        assert batches == 6
        spans = [
            s
            for s in RING.spans()
            if s.get("consumer_id") == "obs-e2e-c" and span_complete(s)
        ]
        # Each batch yields two complete spans in-process: the consumer
        # records at ack time and the producer again when the ACK arrives.
        covered = {(s["epoch"], s["batch_index"]) for s in spans}
        assert covered == {(0, i) for i in range(6)}
        for span in spans:
            ordered = [span["stages"][name] for name in STAGES]
            assert ordered == sorted(ordered), span

    def test_stall_attribution_accounts_for_epoch_wall(self):
        REGISTRY.reset()
        session = repro.serve(
            tiny_loader(), address="inproc://obs-stall", epochs=1, start=False
        )
        try:
            consumer = session.consumer(
                ConsumerConfig(max_epochs=1, receive_timeout=20)
            )
            try:
                session.start()
                assert sum(1 for _ in consumer) == 6
            finally:
                consumer.close()
        finally:
            session.shutdown()
        stall = attribution(REGISTRY)
        for role in ("producer", "consumer"):
            row = stall[role]
            assert row["wall_seconds"] > 0, stall
            assert row["bottleneck"] in row["components"]
            assert row["accounted_seconds"] == pytest.approx(
                sum(row["components"].values())
            )
            # The named phases must explain most of the wall (>= 95% is the
            # acceptance criterion on a quiet run; 80% here because tiny CI
            # epochs have proportionally fat constant overheads).
            assert row["coverage"] >= 0.8, stall


# ---------------------------------------------------------------------------
# the {address}/metrics channel
# ---------------------------------------------------------------------------


class TestMetricsService:
    def test_fetch_metrics_from_live_session(self):
        RING.clear()
        session = repro.serve(
            tiny_loader(), address="inproc://obs-svc", epochs=None, start=False
        )
        try:
            consumer = session.consumer(
                ConsumerConfig(
                    consumer_id="obs-svc-c", max_epochs=1, receive_timeout=20
                )
            )
            try:
                session.start()
                assert sum(1 for _ in consumer) == 6
            finally:
                consumer.close()
            reply = fetch_metrics(session.address, body={"op": "snapshot", "spans": 8})
            assert reply["ok"] is True
            assert reply["metrics"]["repro.producer.publishes"] >= 6
            assert reply["metrics"]["repro.consumer.batches"] >= 6
            assert "producer" in reply["stall"] and "consumer" in reply["stall"]
            assert len(reply["spans"]) <= 8
            assert reply["origin"]["pid"] == os.getpid()
            # The embedded legacy stats() view rides along for dashboards.
            assert reply["stats"]["producer"]["role"] == "producer"

            prom = fetch_metrics(session.address, body={"op": "prometheus"})
            assert prom["ok"] is True
            assert "repro_producer_publishes" in prom["text"]
        finally:
            session.shutdown()


# ---------------------------------------------------------------------------
# legacy stats() views stay shape-compatible
# ---------------------------------------------------------------------------


class TestLegacyStatsViews:
    def test_to_legacy_projects_and_tags_role(self):
        canonical = {"repro.producer.publishes": 5, "repro.pool.peak_bytes": 9}
        legacy = to_legacy(canonical, PRODUCER_KEYS, role="producer")
        assert legacy == {"role": "producer", "payloads_published": 5, "peak_bytes": 9}

    def test_producer_and_consumer_stats_keep_legacy_keys(self):
        session = repro.serve(
            tiny_loader(), address="inproc://obs-legacy", epochs=1, start=False
        )
        try:
            consumer = session.consumer(
                ConsumerConfig(max_epochs=1, receive_timeout=20)
            )
            try:
                session.start()
                assert sum(1 for _ in consumer) == 6
                producer_stats = session.producer.stats()
                consumer_stats = consumer.stats()
            finally:
                consumer.close()
        finally:
            session.shutdown()
        assert set(producer_stats) == {"role", *PRODUCER_KEYS.values()}
        assert producer_stats["role"] == "producer"
        assert producer_stats["payloads_published"] == 6
        assert set(consumer_stats) == {"role", *CONSUMER_KEYS.values()}
        assert consumer_stats["role"] == "consumer"
        assert consumer_stats["batches_consumed"] == 6

    def test_group_consumer_stats_keep_legacy_keys(self):
        session = repro.serve(
            tiny_loader(size=24, batch_size=2),
            address="inproc://obs-legacy-group",
            shards=2,
            epochs=1,
            start=False,
        )
        try:
            group = session.consumer(ConsumerConfig(receive_timeout=20))
            try:
                stats = group.stats()
            finally:
                group.close()
        finally:
            session.shutdown()
        assert set(stats) == {
            "role",
            "consumer_id",
            "interleave",
            "shards",
            "batches_consumed",
            "samples_consumed",
            "duplicates_dropped",
            "members",
        }
        assert stats["role"] == "group-consumer"
        assert stats["shards"] == 2
        assert [m["role"] for m in stats["members"]] == ["consumer", "consumer"]


# ---------------------------------------------------------------------------
# cross-process: trace stamps survive the tcp:// round trip
# ---------------------------------------------------------------------------


def _remote_obs_trainer(address, result_queue):
    """Runs in a separate OS process: attach, train one epoch, report."""
    import repro as repro_child

    consumer = repro_child.attach(
        address, consumer_id="obs-remote", max_epochs=1, receive_timeout=30
    )
    batches = 0
    try:
        for _ in consumer:
            batches += 1
    finally:
        consumer.close()
    result_queue.put((batches, os.getpid()))


@pytest.mark.multiprocess
class TestCrossProcessTracePropagation:
    def test_producer_side_spans_carry_consumer_stamps_over_tcp(self):
        """The child's delivered/trained/acked stamps ride the ACK body back,
        so the producer's ring holds the full seven-stage span — and because
        both processes read the same CLOCK_MONOTONIC on one host, the merged
        stamps are ordered."""
        RING.clear()
        session = repro.serve(
            tiny_loader(), address="tcp://127.0.0.1:0", epochs=1, start=False
        )
        result_queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_remote_obs_trainer, args=(session.address, result_queue)
        )
        child.start()
        try:
            session.start()
            batches, child_pid = result_queue.get(timeout=60)
        finally:
            child.join(timeout=30)
            if child.is_alive():
                child.terminate()
            session.shutdown()
        assert child.exitcode == 0
        assert batches == 6
        assert child_pid != os.getpid()

        spans = [
            s
            for s in RING.spans()
            if s.get("consumer_id") == "obs-remote" and span_complete(s)
        ]
        assert len(spans) == 6, "every remote batch must complete a 7-stage span"
        for span in spans:
            stages = span["stages"]
            ordered = [stages[name] for name in STAGES]
            assert ordered == sorted(ordered), span
            # The span was recorded producer-side (this process)...
            assert span["origin"]["pid"] == os.getpid()
            # ...yet its tail stamps were taken in the child: the remote
            # round trip (deliver over tcp + ack back) takes real time.
            assert stages["acked"] > stages["published"]
