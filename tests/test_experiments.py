"""Experiment-driver tests: every figure/table runs and reproduces the paper's
qualitative shape (who wins, roughly by how much, where crossovers fall)."""

import pytest

from repro.experiments import EXPERIMENTS, format_table
from repro.experiments.audio_classification import cost_saving_summary, run_figure11
from repro.experiments.base import ExperimentResult
from repro.experiments.cloud_catalog import (
    FIGURE1_GRID,
    cost_ratio,
    run_figure1,
    run_table2,
    vcpu_gpu_ratio_histogram,
)
from repro.experiments.coordl_comparison import run_figure14
from repro.experiments.collocation_scaling import run_figure9
from repro.experiments.data_movement import run_table3
from repro.experiments.flexible_batching import run_figure10
from repro.experiments.image_classification import run_figure8
from repro.experiments.image_generation import run_figure12
from repro.experiments.joader_comparison import run_figure15
from repro.experiments.llm_finetuning import run_table4
from repro.experiments.model_selection import run_figure13
from repro.experiments import (
    run_ablation_buffer_size,
    run_ablation_delivery_mode,
    run_ablation_gpu_sharing,
    run_ablation_producer_batch,
    run_ablation_rubberband,
)


class TestExperimentResultHelpers:
    def test_add_row_column_and_row_where(self):
        result = ExperimentResult("x", "test")
        result.add_row(a=1, b="one")
        result.add_row(a=2, b="two")
        assert result.column("a") == [1, 2]
        assert result.row_where(a=2)["b"] == "two"
        with pytest.raises(KeyError):
            result.row_where(a=3)

    def test_format_table_and_markdown(self):
        result = ExperimentResult("x", "test", notes="note")
        result.add_row(metric=1.234, label="y")
        text = result.to_markdown()
        assert "| metric | label |" in text
        assert "note" in text
        assert format_table([]) == "(no rows)"

    def test_registry_contains_every_figure_and_table(self):
        expected = {"fig1", "tab2", "fig8", "tab3", "fig9", "fig10", "fig11", "fig12",
                    "fig13", "tab4", "fig14", "fig15"}
        assert expected <= set(EXPERIMENTS)


class TestCloudCatalog:
    def test_figure1_counts(self):
        result = run_figure1()
        aws = result.row_where(provider="aws")
        assert aws["instance_types"] == sum(FIGURE1_GRID["aws"].values())
        assert 0 < aws["share_at_or_below_12"] <= 1

    def test_ratio_histogram(self):
        histogram = vcpu_gpu_ratio_histogram("aws")
        assert sum(histogram.values()) == sum(FIGURE1_GRID["aws"].values())
        assert all(ratio > 0 for ratio in histogram)

    def test_table2_prices(self):
        result = run_table2()
        assert result.row_where(instance="g5.2xlarge")["cost_per_hour"] == pytest.approx(1.212)
        assert result.row_where(instance="A100 Server")["vcpus_per_gpu"] == 12

    def test_cost_ratio_used_in_cost_claims(self):
        assert cost_ratio("g5.2xlarge", "g5.8xlarge") == pytest.approx(2.448 / 1.212)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure8(fast=True)

    def test_sharing_never_hurts(self, result):
        assert all(row["speedup"] >= 0.97 for row in result.rows)

    def test_mobilenet_small_nearly_doubles(self, result):
        row = result.row_where(model="MobileNet S")
        assert row["speedup"] > 1.7

    def test_gpu_bound_model_unaffected(self, result):
        row = result.row_where(model="MobileNet L")
        assert row["speedup"] == pytest.approx(1.0, abs=0.1)

    def test_sharing_frees_cpu(self, result):
        for row in result.rows:
            assert row["shared_cpu_percent"] < row["non_shared_cpu_percent"]
        # MobileNet L: the paper says ~70% of the CPU is freed.
        row = result.row_where(model="MobileNet L")
        assert row["shared_cpu_percent"] < 0.45 * row["non_shared_cpu_percent"]

    def test_baseline_saturates_cpu_for_small_models(self, result):
        assert result.row_where(model="MobileNet S")["non_shared_cpu_percent"] > 90
        assert result.row_where(model="ResNet18")["non_shared_cpu_percent"] > 90

    def test_sharing_raises_gpu_utilization_of_input_bound_models(self, result):
        row = result.row_where(model="MobileNet S")
        assert row["shared_gpu_percent"] > row["non_shared_gpu_percent"] + 20


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(fast=True)

    def test_disk_io_drops_with_sharing(self, result):
        baseline_disk = result.row_where(mode="baseline", gpu=0)["disk_mb_s"]
        shared_disk = result.row_where(mode="shared", gpu=0)["disk_mb_s"]
        assert shared_disk < baseline_disk / 3

    def test_consumer_pcie_replaced_by_nvlink(self, result):
        for gpu in (1, 2, 3):
            shared = result.row_where(mode="shared", gpu=gpu)
            baseline = result.row_where(mode="baseline", gpu=gpu)
            assert shared["pcie_mb_s"] < 0.2 * baseline["pcie_mb_s"]
            assert shared["nvlink_mb_s"] > 0.5 * baseline["pcie_mb_s"]

    def test_producer_gpu_has_small_vram_overhead(self, result):
        producer = result.row_where(mode="shared", gpu=0)["vram_gb"]
        consumer = result.row_where(mode="shared", gpu=1)["vram_gb"]
        baseline = result.row_where(mode="baseline", gpu=0)["vram_gb"]
        assert consumer == pytest.approx(baseline, abs=0.5)
        assert 0.2 < producer - baseline < 2.5


class TestFigure9:
    def test_small_model_needs_sharing_as_degree_grows(self):
        result = run_figure9(fast=True)
        small_1x = result.row_where(model="MobileNet S", collocation_degree=1)
        small_4x = result.row_where(model="MobileNet S", collocation_degree=4)
        assert small_4x["non_shared_samples_per_s"] < 0.7 * small_1x["non_shared_samples_per_s"]
        assert small_4x["shared_samples_per_s"] > 0.9 * small_1x["shared_samples_per_s"]
        large_4x = result.row_where(model="MobileNet L", collocation_degree=4)
        assert large_4x["speedup"] == pytest.approx(1.0, abs=0.1)


class TestFigure10:
    def test_flexible_batching_sustains_throughput(self):
        result = run_figure10(fast=True)
        default = result.row_where(mode="default")
        flexible = result.row_where(mode="flexible")
        assert flexible["aggregate_samples_per_s"] > 0.85 * default["aggregate_samples_per_s"]
        repetition_rows = [row for row in result.rows if row["mode"] == "repetition"]
        assert repetition_rows
        assert all(row["repeated_share"] < 0.5 for row in repetition_rows)


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure11(fast=True)

    def test_non_shared_collapses_on_small_instance(self, result):
        small = result.row_where(instance="g5.2xlarge", strategy="none", gpu_sharing="mps")
        large = result.row_where(instance="g5.8xlarge", strategy="none", gpu_sharing="mps")
        assert small["per_model_samples_per_s"] < 0.45 * large["per_model_samples_per_s"]

    def test_shared_is_flat_across_instances(self, result):
        values = [
            result.row_where(instance=name, strategy="tensorsocket", gpu_sharing="mps")[
                "per_model_samples_per_s"
            ]
            for name in ("g5.2xlarge", "g5.4xlarge", "g5.8xlarge")
        ]
        assert max(values) - min(values) < 0.2 * max(values)

    def test_cost_saving_is_roughly_half(self, result):
        summary = cost_saving_summary(result)
        assert summary["throughput_ratio"] > 0.8
        assert 40 <= summary["cost_saving_percent"] <= 60


class TestFigure12:
    def test_shared_clip_speeds_up_collocated_training(self):
        result = run_figure12(fast=True)
        quad = result.row_where(collocation_degree=4)
        single = result.row_where(collocation_degree=1)
        assert single["aggregate_speedup"] == pytest.approx(1.0, abs=0.08)
        assert 1.05 < quad["aggregate_speedup"] < 1.35


class TestFigure13:
    def test_shared_small_instance_matches_large_instances(self):
        result = run_figure13(fast=True)
        shared_small = result.row_where(instance="g5.2xlarge", strategy="tensorsocket")
        nonshared_small = result.row_where(instance="g5.2xlarge", strategy="none")
        nonshared_large = result.row_where(instance="g5.8xlarge", strategy="none")
        assert (
            shared_small["aggregate_samples_per_s"]
            > 0.9 * nonshared_large["aggregate_samples_per_s"]
        )
        assert (
            nonshared_small["aggregate_samples_per_s"]
            < 0.8 * nonshared_large["aggregate_samples_per_s"]
        )
        # Cost efficiency: the shared small instance buys ~2x the samples per dollar.
        assert (
            shared_small["samples_per_dollar"] > 1.6 * nonshared_large["samples_per_dollar"]
        )


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(fast=True)

    def test_tokens_per_second_unaffected_by_sharing(self, result):
        baseline = result.row_where(mode="baseline", gpu=0)["tokens_per_s"]
        shared = result.row_where(mode="shared", role="consumer", gpu=1)["tokens_per_s"]
        assert shared == pytest.approx(baseline, rel=0.05)
        assert 6000 < baseline < 9000

    def test_data_traffic_is_negligible(self, result):
        producer = result.row_where(mode="shared", role="producer")
        consumer = result.row_where(mode="shared", role="consumer", gpu=1)
        assert producer["pcie_mb_s"] < 1.0
        assert consumer["nvlink_kb_s"] < 1024  # well under a MB/s
        assert consumer["pcie_mb_s"] > 10  # the training's own traffic dominates

    def test_vram_overhead_only_on_producer(self, result):
        baseline = result.row_where(mode="baseline", gpu=0)["vram_gb"]
        consumer = result.row_where(mode="shared", role="consumer", gpu=1)["vram_gb"]
        producer = result.row_where(mode="shared", role="producer")["vram_gb"]
        assert consumer == pytest.approx(baseline, abs=0.2)
        assert 0.5 < producer < 3.0


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure14(fast=True)

    def test_baseline_collapses_while_sharing_holds(self, result):
        row = result.row_where(collocation_degree=4)
        assert row["baseline_throughput_x"] < 0.35
        assert row["tensorsocket_throughput_x"] > 0.9
        assert row["coordl_throughput_x"] > 0.9

    def test_coordl_needs_more_cpu_than_tensorsocket(self, result):
        row = result.row_where(collocation_degree=4)
        assert row["coordl_cpu_x"] > 1.25
        assert row["tensorsocket_cpu_x"] < 1.15
        assert row["baseline_cpu_x"] == pytest.approx(1.0, abs=0.15)


class TestFigure15:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure15(fast=True)

    def test_ordering_matches_paper(self, result):
        for row in result.rows:
            if row["collocation_degree"] == 1:
                continue
            assert (
                row["baseline_samples_per_s"]
                < row["joader_samples_per_s"]
                < row["tensorsocket_samples_per_s"]
            )

    def test_tensorsocket_holds_throughput_until_high_degrees(self, result):
        one = result.row_where(collocation_degree=1)["tensorsocket_samples_per_s"]
        four = result.row_where(collocation_degree=4)["tensorsocket_samples_per_s"]
        eight = result.row_where(collocation_degree=8)["tensorsocket_samples_per_s"]
        assert four > 0.9 * one
        assert 0.55 * one < eight < 0.85 * one

    def test_measured_joader_matches_paper_within_factor(self, result):
        for row in result.rows:
            measured = row["joader_samples_per_s"]
            paper = row["paper_joader"]
            assert 0.5 * paper < measured < 1.6 * paper


class TestAblations:
    def test_buffer_of_two_is_enough(self):
        result = run_ablation_buffer_size(fast=True)
        by_size = {row["buffer_size"]: row["aggregate_samples_per_s"] for row in result.rows}
        assert by_size[2] >= 0.95 * max(by_size.values())

    def test_mps_beats_multi_stream(self):
        result = run_ablation_gpu_sharing(fast=True)
        mps = result.row_where(sharing_mode="mps")["aggregate_samples_per_s"]
        streams = result.row_where(sharing_mode="multi_stream")["aggregate_samples_per_s"]
        assert mps >= streams

    def test_pointer_delivery_is_orders_of_magnitude_smaller(self):
        result = run_ablation_delivery_mode(fast=True)
        for row in result.rows:
            assert row["reduction_factor"] > 1000

    def test_producer_batch_guidance_bounds_repetition(self):
        result = run_ablation_producer_batch(fast=True)
        for row in result.rows:
            assert row["bound_holds"]
            if row["ratio"] >= 2.0:
                assert row["repeated_share"] <= 0.5

    def test_rubberband_window_admits_early_joiners(self):
        result = run_ablation_rubberband(fast=True)
        no_window = result.row_where(window_fraction=0.0, join_after_batches=5)
        small_window = result.row_where(window_fraction=0.02, join_after_batches=5)
        assert no_window["batches_until_training_starts"] > 0
        assert small_window["batches_until_training_starts"] == 0
