"""Unit tests for the simulated hardware models (CPU, GPU, links, storage, machine)."""

import pytest

from repro.hardware import (
    AWS_G5_2XLARGE,
    AWS_G5_8XLARGE,
    A100_SERVER,
    CpuPool,
    Gpu,
    GpuSharingMode,
    H100_SERVER,
    Link,
    LinkKind,
    Machine,
    StorageDevice,
    machine_catalog,
)
from repro.hardware.instances import aws_g5_instances
from repro.hardware.metrics import GB, Gauge, MetricsRegistry, ThroughputSeries, TrafficMeter
from repro.simulation import Simulator


class TestCpuPool:
    def test_throughput_limited_by_core_count(self):
        sim = Simulator()
        cpu = CpuPool(sim, cores=2, contention_factor=1.0)
        finished = []

        def worker():
            yield from cpu.run(1.0)
            finished.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        # Four seconds of work on two cores takes two seconds of wall-clock.
        assert max(finished) == pytest.approx(2.0, rel=1e-6)

    def test_time_slicing_lets_short_tasks_through(self):
        sim = Simulator()
        cpu = CpuPool(sim, cores=1, contention_factor=1.0)
        finish = {}

        def long_task():
            yield from cpu.run(1.0)
            finish["long"] = sim.now

        def short_task():
            yield sim.timeout(0.001)
            yield from cpu.run(0.01)
            finish["short"] = sim.now

        sim.process(long_task())
        sim.process(short_task())
        sim.run()
        # Without preemption the short task would finish after the long one.
        assert finish["short"] < finish["long"]

    def test_utilization_and_busy_core_seconds(self):
        sim = Simulator()
        cpu = CpuPool(sim, cores=4, contention_factor=1.0)

        def worker():
            yield from cpu.run(2.0)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert cpu.busy_core_seconds == pytest.approx(4.0, rel=1e-6)
        assert cpu.utilization() == pytest.approx(0.5, rel=1e-6)
        assert cpu.utilization_percent() == pytest.approx(50.0, rel=1e-6)

    def test_contention_inflates_work_when_saturated(self):
        sim = Simulator()
        cpu = CpuPool(sim, cores=1, contention_factor=1.5, contention_threshold=0.5)

        def worker():
            yield from cpu.run(1.0)

        sim.process(worker())
        sim.run()
        assert sim.now == pytest.approx(1.5, rel=1e-6)

    def test_argument_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CpuPool(sim, cores=0)
        with pytest.raises(ValueError):
            CpuPool(sim, cores=1, contention_factor=0.5)
        with pytest.raises(ValueError):
            CpuPool(sim, 1).run(-1)


class TestGpu:
    def test_compute_time_scales_with_relative_speed(self):
        sim = Simulator()
        fast = Gpu(sim, "h100", vram_gb=80, relative_compute=2.0)
        assert fast.scale_work(1.0) == pytest.approx(0.5)

    def test_mps_sharing_splits_throughput(self):
        sim = Simulator()
        gpu = Gpu(sim, "a100", vram_gb=40, sharing_mode=GpuSharingMode.MPS)
        done = []

        def trainer():
            yield gpu.compute(1.0)
            done.append(sim.now)

        sim.process(trainer())
        sim.process(trainer())
        sim.run()
        efficiency = 0.995  # MPS at two processes
        assert done[0] == pytest.approx(2.0 / efficiency, rel=1e-3)

    def test_sharing_mode_efficiency_ordering(self):
        from repro.hardware.gpu import (
            _exclusive_efficiency,
            _mps_efficiency,
            _multi_stream_efficiency,
        )

        for n in (2, 4, 8):
            assert _mps_efficiency(n) >= _multi_stream_efficiency(n) >= _exclusive_efficiency(n)
            assert 0 < _exclusive_efficiency(n) <= 1.0
        assert _mps_efficiency(1) == 1.0

    def test_vram_accounting_and_peak(self):
        sim = Simulator()
        gpu = Gpu(sim, "a100", vram_gb=40)
        gpu.register_process()
        gpu.allocate(int(7 * GB))
        first_reading = gpu.vram_in_use_gb
        gpu.allocate(int(1 * GB))
        gpu.free(int(1 * GB))
        assert gpu.vram_in_use_gb == pytest.approx(first_reading)
        assert gpu.vram_peak_gb == pytest.approx(first_reading + 1.0)
        gpu.free(int(7 * GB))
        gpu.unregister_process()
        assert gpu.vram_in_use_gb == pytest.approx(0.0)

    def test_vram_overflow_raises(self):
        from repro.simulation import SimulationError

        sim = Simulator()
        gpu = Gpu(sim, "small", vram_gb=1)
        with pytest.raises(SimulationError):
            gpu.allocate(int(2 * GB))

    def test_unregister_without_register_raises(self):
        gpu = Gpu(Simulator(), "a100", vram_gb=40)
        with pytest.raises(ValueError):
            gpu.unregister_process()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Gpu(Simulator(), "bad", vram_gb=0)
        with pytest.raises(ValueError):
            Gpu(Simulator(), "bad", vram_gb=1, relative_compute=0)


class TestLinkAndStorage:
    def test_transfer_time_and_byte_accounting(self):
        sim = Simulator()
        link = Link(sim, "pcie", kind=LinkKind.PCIE, bandwidth_bytes_per_s=1e9, latency_s=0.0)
        done = []

        def mover():
            yield from link.transfer(500_000_000)
            done.append(sim.now)

        sim.process(mover())
        sim.run()
        assert done == [pytest.approx(0.5)]
        assert link.total_bytes == 500_000_000

    def test_transfers_queue_on_the_same_link(self):
        sim = Simulator()
        link = Link(sim, "pcie", kind=LinkKind.PCIE, bandwidth_bytes_per_s=1e9, latency_s=0.0)
        done = []

        def mover():
            yield from link.transfer(1_000_000_000)
            done.append(sim.now)

        sim.process(mover())
        sim.process(mover())
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_record_only_counts_bytes_without_time(self):
        sim = Simulator()
        link = Link(sim, "pcie", kind=LinkKind.PCIE, bandwidth_bytes_per_s=1e9)
        link.record_only(1234)
        assert link.total_bytes == 1234

    def test_link_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "x", kind=LinkKind.PCIE, bandwidth_bytes_per_s=0)
        link = Link(sim, "x", kind=LinkKind.PCIE, bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            link.transfer(-1)

    def test_storage_cache_hits_skip_disk(self):
        sim = Simulator()
        storage = StorageDevice(
            sim, read_bandwidth_bytes_per_s=1e9, cache_bytes=100, working_set_bytes=100
        )

        def reader():
            yield from storage.read(1_000_000)

        sim.process(reader())
        sim.run()
        assert storage.total_bytes_read == 0
        assert storage.cache_hits == 1

    def test_storage_misses_cost_bandwidth(self):
        sim = Simulator()
        storage = StorageDevice(
            sim,
            read_bandwidth_bytes_per_s=1e9,
            latency_s=0.0,
            cache_bytes=0,
            working_set_bytes=1e12,
        )
        done = []

        def reader():
            yield from storage.read(2_000_000_000)
            done.append(sim.now)

        sim.process(reader())
        sim.run()
        assert done == [pytest.approx(2.0)]
        assert storage.cache_misses == 1
        assert storage.total_bytes_read == 2_000_000_000

    def test_storage_working_set_update(self):
        storage = StorageDevice(Simulator(), cache_bytes=50, working_set_bytes=100)
        assert storage.cache_hit_ratio == pytest.approx(0.5)
        storage.set_working_set(200)
        assert storage.cache_hit_ratio == pytest.approx(0.25)
        with pytest.raises(ValueError):
            storage.set_working_set(0)


class TestMetrics:
    def test_traffic_meter_rates(self):
        clock = {"now": 0.0}
        meter = TrafficMeter("disk", lambda: clock["now"])
        meter.record(10 * 1024 * 1024)
        clock["now"] = 10.0
        assert meter.average_mb_per_second() == pytest.approx(1.0)
        meter.reset()
        assert meter.total_bytes == 0

    def test_gauge_time_average_and_peak(self):
        clock = {"now": 0.0}
        gauge = Gauge("vram", lambda: clock["now"])
        gauge.set(10)
        clock["now"] = 5.0
        gauge.set(20)
        clock["now"] = 10.0
        assert gauge.peak == 20
        assert gauge.time_average() == pytest.approx(15.0)

    def test_registry_snapshot(self):
        registry = MetricsRegistry(lambda: 1.0)
        registry.meter("disk").record(100)
        registry.gauge("vram").set(3)
        registry.counter("batches").add(5)
        snapshot = registry.snapshot()
        assert snapshot["disk.total_bytes"] == 100
        assert snapshot["vram.value"] == 3
        assert snapshot["batches"] == 5

    def test_throughput_series(self):
        series = ThroughputSeries("agg")
        series.append(1.0, 100.0)
        series.append(2.0, 200.0)
        assert series.mean() == pytest.approx(150.0)
        assert series.as_rows() == [(1.0, 100.0), (2.0, 200.0)]


class TestMachineCatalog:
    def test_table2_machines_present_with_paper_values(self):
        catalog = machine_catalog()
        assert catalog["A100 Server"].vcpus == 48
        assert catalog["A100 Server"].gpu_count == 4
        assert catalog["H100 Server"].gpu.vram_gb == 80
        assert catalog["g5.2xlarge"].cost_per_hour == pytest.approx(1.212)
        assert catalog["g5.8xlarge"].cost_per_hour == pytest.approx(2.448)

    def test_aws_instances_sorted_by_vcpus(self):
        vcpus = [spec.vcpus for spec in aws_g5_instances()]
        assert vcpus == [8, 16, 32]

    def test_vcpus_per_gpu_ratio(self):
        assert A100_SERVER.vcpus_per_gpu == 12
        assert AWS_G5_2XLARGE.vcpus_per_gpu == 8

    def test_on_prem_machines_have_no_price(self):
        with pytest.raises(ValueError):
            H100_SERVER.hourly_cost()

    def test_machine_assembly_from_spec(self):
        sim = Simulator()
        machine = Machine(sim, A100_SERVER)
        assert len(machine.gpus) == 4
        assert len(machine.pcie_links) == 4
        assert machine.has_nvlink
        assert machine.nvlink(0, 3) is machine.nvlink(3, 0)
        with pytest.raises(ValueError):
            machine.nvlink(1, 1)

    def test_single_gpu_machine_has_no_nvlink(self):
        machine = Machine(Simulator(), AWS_G5_8XLARGE)
        assert not machine.has_nvlink
        with pytest.raises(ValueError):
            machine.nvlink(0, 1)

    def test_machine_reports(self):
        machine = Machine(Simulator(), AWS_G5_2XLARGE)
        traffic = machine.traffic_report()
        assert "disk_read_mb_s" in traffic and "pcie0_mb_s" in traffic
        utilization = machine.utilization_report()
        assert utilization["cpu_percent"] == 0.0
        assert utilization["gpu0_percent"] == 0.0

    def test_set_sharing_mode_propagates(self):
        machine = Machine(Simulator(), A100_SERVER)
        machine.set_sharing_mode(GpuSharingMode.MULTI_STREAM)
        assert all(gpu.sharing_mode is GpuSharingMode.MULTI_STREAM for gpu in machine.gpus)
