"""Multi-tenant dataset broker: catalog resolution, tenant quotas, idle
eviction, lazy mounting, and the unified manifest schema every describe/
catalog channel speaks."""

import multiprocessing
import threading
import time

import numpy as np
import pytest

import repro
from repro.broker import DEFAULT_BROKER_ADDRESS, DatasetBroker
from repro.core import GroupConsumer, SessionManifest
from repro.core.group import catalog_resolve
from repro.core.manifest import MANIFEST_SCHEMA_VERSION
from repro.data import DataLoader
from repro.data.dataset import Dataset
from repro.messaging import endpoint as endpoints
from repro.messaging.errors import AddressError, AddressNotServedError
from repro.messaging.sockets import ReqSocket
from repro.tensor.errors import QuotaExceededError


class TaggedDataset(Dataset):
    """Items carry a dataset tag + their index so streams can be audited."""

    def __init__(self, tag, n):
        self.tag = tag
        self.n = n

    def __len__(self):
        return self.n

    def __getitem__(self, index):
        return {
            "tag": np.array([self.tag], dtype=np.int64),
            "index": np.array([index], dtype=np.int64),
        }


def tagged_loader(tag, n=12, batch_size=4):
    return DataLoader(TaggedDataset(tag, n), batch_size=batch_size)


def drain(consumer, limit=1000):
    rows = []
    with consumer:
        for batch in consumer:
            rows.append(
                (
                    int(batch["tag"].numpy().ravel()[0]),
                    [int(i) for i in batch["index"].numpy().ravel()],
                )
            )
            if len(rows) >= limit:
                break
    return rows


# ---------------------------------------------------------------------------
# the unified manifest schema
# ---------------------------------------------------------------------------


class TestSessionManifest:
    def test_round_trip(self):
        manifest = SessionManifest(
            address="inproc://m",
            kind="group",
            shards=3,
            shard_mode="strided",
            member_addresses=("inproc://m/shard0", "inproc://m/shard1", "inproc://m/shard2"),
        )
        body = manifest.to_dict()
        assert body["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert isinstance(body["member_addresses"], list)
        assert SessionManifest.from_dict(body) == manifest

    def test_members_derived_from_address_when_not_listed(self):
        manifest = SessionManifest(address="inproc://m", shards=2, kind="group")
        assert manifest.members() == ("inproc://m/shard0", "inproc://m/shard1")
        assert SessionManifest(address="inproc://m").members() == ("inproc://m",)

    def test_pre_schema_reply_still_parses(self):
        manifest = SessionManifest.from_dict({"address": "inproc://old", "shards": 2})
        assert manifest.shards == 2
        assert manifest.kind == "session"

    def test_unknown_keys_dropped(self):
        manifest = SessionManifest.from_dict(
            {"address": "inproc://new", "shards": 1, "from_the_future": True}
        )
        assert manifest.address == "inproc://new"

    def test_newer_schema_version_rejected(self):
        with pytest.raises(ValueError, match="newer than supported"):
            SessionManifest.from_dict(
                {"address": "x", "schema_version": MANIFEST_SCHEMA_VERSION + 1}
            )

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            SessionManifest(address="x", shards=0)
        with pytest.raises(ValueError):
            SessionManifest(address="x", kind="mystery")


# ---------------------------------------------------------------------------
# publishing and the catalog channel
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_list_and_describe_over_the_wire(self):
        with repro.broker("inproc://plane-catalog") as broker:
            broker.publish("alpha", tagged_loader(1))
            broker.publish("beta", tagged_loader(2), shards=2)
            endpoint = endpoints.connect(broker.address)
            req = ReqSocket(endpoint.hub, f"{broker.address}/catalog")
            try:
                reply = req.request({"op": "list"}, timeout=5)
                assert reply["ok"]
                assert [row["name"] for row in reply["datasets"]] == ["alpha", "beta"]

                reply = req.request({"op": "describe", "dataset": "beta"}, timeout=5)
                manifest = SessionManifest.from_dict(reply["manifest"])
                assert manifest.shards == 2
                assert manifest.dataset == "beta"
                assert manifest.kind == "dataset"
                assert manifest.state == "mounted"

                reply = req.request({"op": "describe", "dataset": "nope"}, timeout=5)
                assert not reply["ok"]
                assert "unknown dataset" in reply["error"]

                reply = req.request({"op": "frobnicate"}, timeout=5)
                assert not reply["ok"]
            finally:
                req.close()
                endpoint.release()

    def test_catalog_resolve_helper(self):
        with repro.broker("inproc://plane-resolve") as broker:
            broker.publish("only", tagged_loader(7))
            manifest = catalog_resolve(broker.hub, broker.address, "only")
            assert manifest is not None
            assert manifest["dataset"] == "only"
            assert catalog_resolve(broker.hub, broker.address, "missing") is None

    def test_dataset_names_validated(self):
        with repro.broker("inproc://plane-names") as broker:
            for bad in ("", "a/b", "data", "catalog", "shard0", " lead", "-x"):
                with pytest.raises(ValueError):
                    broker.publish(bad, tagged_loader(1))

    def test_duplicate_publish_rejected(self):
        with repro.broker("inproc://plane-dup") as broker:
            broker.publish("ds", tagged_loader(1))
            with pytest.raises(AddressError, match="already published"):
                broker.publish("ds", tagged_loader(1))

    def test_loader_xor_factory_enforced(self):
        with repro.broker("inproc://plane-xor") as broker:
            with pytest.raises(ValueError, match="exactly one"):
                broker.publish("ds")
            with pytest.raises(ValueError, match="exactly one"):
                broker.publish("ds", tagged_loader(1), loader_factory=lambda: None)

    def test_broker_rejects_dataset_path_address(self):
        with pytest.raises(AddressError, match="bare plane address"):
            DatasetBroker("tcp://127.0.0.1:0/imagenet")

    def test_attach_to_bare_plane_address_is_an_error(self):
        with repro.broker("inproc://plane-bare") as broker:
            broker.publish("ds", tagged_loader(1))
            with pytest.raises(AddressError, match="not a dataset"):
                repro.attach(broker.address)

    def test_default_address(self):
        with repro.broker() as broker:
            assert broker.address == DEFAULT_BROKER_ADDRESS


# ---------------------------------------------------------------------------
# serving many datasets from one plane
# ---------------------------------------------------------------------------


class TestMultiTenantServing:
    def test_two_datasets_disjoint_consumer_groups(self):
        with repro.broker("inproc://plane-two") as broker:
            broker.publish("ones", tagged_loader(1, n=12, batch_size=4))
            broker.publish("twos", tagged_loader(2, n=8, batch_size=4))
            rows_a = drain(repro.attach(f"{broker.address}/ones", max_epochs=1))
            rows_b = drain(repro.attach(f"{broker.address}/twos", max_epochs=1))
        assert [tag for tag, _ in rows_a] == [1, 1, 1]
        assert sorted(i for _, idx in rows_a for i in idx) == list(range(12))
        assert [tag for tag, _ in rows_b] == [2, 2]
        assert sorted(i for _, idx in rows_b for i in idx) == list(range(8))

    def test_sharded_dataset_resolves_to_group_consumer(self):
        with repro.broker("inproc://plane-sharded") as broker:
            broker.publish("wide", tagged_loader(3, n=16, batch_size=4), shards=2)
            consumer = repro.attach(f"{broker.address}/wide", max_epochs=1)
            assert isinstance(consumer, GroupConsumer)
            rows = drain(consumer)
        assert sorted(i for _, idx in rows for i in idx) == list(range(16))

    def test_same_dataset_served_to_two_consumers(self):
        with repro.broker("inproc://plane-fan") as broker:
            broker.publish("shared", tagged_loader(4, n=12, batch_size=4))
            results = {}

            def trainer(name):
                results[name] = drain(
                    repro.attach(f"{broker.address}/shared", max_epochs=1)
                )

            threads = [
                threading.Thread(target=trainer, args=(name,))
                for name in ("first", "second")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        for consumer_rows in results.values():
            assert sorted(i for _, idx in consumer_rows for i in idx) == list(range(12))

    def test_stats_rows_per_dataset(self):
        with repro.broker("inproc://plane-stats") as broker:
            broker.publish("a", tagged_loader(1), quota_bytes=1 << 20)
            broker.publish("b", loader_factory=lambda: tagged_loader(2))
            stats = broker.stats()
            assert stats["datasets"]["a"]["state"] == "mounted"
            assert stats["datasets"]["a"]["quota_bytes"] == 1 << 20
            assert stats["datasets"]["b"]["state"] == "registered"
            assert set(stats["pool"]) == {
                "bytes_in_flight",
                "cached_bytes",
                "peak_bytes",
                "free_bytes",
            }

    def test_shutdown_drains_every_dataset_to_zero(self):
        broker = repro.broker("inproc://plane-drain")
        broker.publish("a", tagged_loader(1))
        broker.publish("b", tagged_loader(2), shards=2)
        drain(repro.attach(f"{broker.address}/a", max_epochs=1))
        drain(repro.attach(f"{broker.address}/b", max_epochs=1))
        broker.shutdown()
        for row in broker.stats()["datasets"].values():
            assert row["bytes_used"] == 0
            assert row["consumers"] == 0

    def test_publish_after_shutdown_rejected(self):
        broker = repro.broker("inproc://plane-closed")
        broker.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            broker.publish("late", tagged_loader(1))


# ---------------------------------------------------------------------------
# tenant quotas
# ---------------------------------------------------------------------------


class TestQuotas:
    def test_over_quota_allocation_rejected_and_drains_to_zero(self):
        with repro.broker("inproc://plane-quota") as broker:
            broker.publish("greedy", tagged_loader(5), quota_bytes=1)
            # Staging only starts once a consumer registers; attach without
            # iterating so the first allocation trips the 1-byte quota.
            consumer = repro.attach(f"{broker.address}/greedy", receive_timeout=10)
            try:
                deadline = time.monotonic() + 10
                with pytest.raises(QuotaExceededError):
                    while time.monotonic() < deadline:
                        broker.raise_dataset_error("greedy")
                        time.sleep(0.02)
            finally:
                consumer.close()
            assert broker.stats()["datasets"]["greedy"]["bytes_used"] == 0

    def test_quota_does_not_leak_across_tenants(self):
        with repro.broker("inproc://plane-isolate") as broker:
            broker.publish("tiny", tagged_loader(6), quota_bytes=1)
            broker.publish("roomy", tagged_loader(7, n=12, batch_size=4))
            rows = drain(repro.attach(f"{broker.address}/roomy", max_epochs=1))
            assert sorted(i for _, idx in rows for i in idx) == list(range(12))

    def test_default_quota_applies_to_publishes(self):
        with repro.broker("inproc://plane-defq", default_quota_bytes=2 << 20) as broker:
            broker.publish("inherits", tagged_loader(1))
            assert broker.stats()["datasets"]["inherits"]["quota_bytes"] == 2 << 20
            broker.publish("overrides", tagged_loader(2), quota_bytes=4 << 20)
            assert broker.stats()["datasets"]["overrides"]["quota_bytes"] == 4 << 20


# ---------------------------------------------------------------------------
# lazy mounting and idle eviction
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_lazy_dataset_mounts_on_first_attach(self):
        calls = []

        def factory():
            calls.append(1)
            return tagged_loader(8, n=8, batch_size=4)

        with repro.broker("inproc://plane-lazy") as broker:
            broker.publish("cold", loader_factory=factory)
            assert calls == []
            assert broker.stats()["datasets"]["cold"]["state"] == "registered"
            rows = drain(repro.attach(f"{broker.address}/cold", max_epochs=1))
            assert calls == [1]
            assert sorted(i for _, idx in rows for i in idx) == list(range(8))
            assert broker.stats()["datasets"]["cold"]["state"] == "mounted"

    def test_catalog_subscribe_mounts_lazy_dataset(self):
        with repro.broker("inproc://plane-lazysub") as broker:
            broker.publish("cold", loader_factory=lambda: tagged_loader(9))
            manifest = catalog_resolve(broker.hub, broker.address, "cold")
            assert manifest is not None
            assert broker.stats()["datasets"]["cold"]["state"] == "mounted"

    def test_idle_dataset_evicted_and_remounts_on_attach(self):
        with repro.broker(
            "inproc://plane-idle", idle_ttl=0.2, sweep_interval=0.05
        ) as broker:
            broker.publish("fickle", tagged_loader(10, n=8, batch_size=4))
            rows = drain(repro.attach(f"{broker.address}/fickle", max_epochs=1))
            assert len(rows) == 2
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                row = broker.stats()["datasets"]["fickle"]
                if row["state"] == "registered":
                    break
                time.sleep(0.05)
            row = broker.stats()["datasets"]["fickle"]
            assert row["state"] == "registered"
            assert row["evictions"] >= 1
            assert row["bytes_used"] == 0
            # The next attach mounts it again and serves a full epoch.
            rows = drain(repro.attach(f"{broker.address}/fickle", max_epochs=1))
            assert sorted(i for _, idx in rows for i in idx) == list(range(8))

    def test_explicit_evict_returns_leaked_bytes(self):
        with repro.broker("inproc://plane-evict") as broker:
            broker.publish("ds", tagged_loader(11))
            drain(repro.attach(f"{broker.address}/ds", max_epochs=1))
            assert broker.evict("ds") == 0
            assert broker.stats()["datasets"]["ds"]["state"] == "registered"

    def test_unpublish_removes_from_catalog(self):
        with repro.broker("inproc://plane-unpub") as broker:
            broker.publish("gone", tagged_loader(12))
            broker.unpublish("gone")
            assert broker.dataset_names() == []
            with pytest.raises(AddressNotServedError):
                repro.attach(f"{broker.address}/gone")


# ---------------------------------------------------------------------------
# cross-process attach-by-name (tcp)
# ---------------------------------------------------------------------------


def _remote_attacher(address, result_queue):
    rows = drain(repro.attach(address, max_epochs=1, receive_timeout=30))
    result_queue.put(rows)


@pytest.mark.multiprocess
class TestCrossProcessBroker:
    def test_attach_by_name_from_other_processes(self):
        broker = repro.broker("tcp://127.0.0.1:0")
        try:
            broker.publish("plain", tagged_loader(1, n=12, batch_size=4))
            broker.publish("wide", tagged_loader(2, n=16, batch_size=4), shards=2)
            queue = multiprocessing.Queue()
            children = [
                multiprocessing.Process(
                    target=_remote_attacher,
                    args=(f"{broker.address}/{name}", queue),
                )
                for name in ("plain", "wide")
            ]
            for child in children:
                child.start()
            try:
                results = [queue.get(timeout=60), queue.get(timeout=60)]
            finally:
                for child in children:
                    child.join(timeout=30)
                    if child.is_alive():
                        child.terminate()
            by_tag = {rows[0][0]: rows for rows in results}
            assert sorted(by_tag) == [1, 2]
            assert sorted(i for _, idx in by_tag[1] for i in idx) == list(range(12))
            assert sorted(i for _, idx in by_tag[2] for i in idx) == list(range(16))
        finally:
            broker.shutdown()
        for row in broker.stats()["datasets"].values():
            assert row["bytes_used"] == 0
