"""Unit tests for shared segments, the pool, and payload pack/unpack."""

import numpy as np
import pytest

from repro.tensor import (
    BatchPayload,
    PayloadError,
    SharedMemoryError,
    SharedMemoryPool,
    SharedSegment,
    TensorPayload,
    from_numpy,
)


@pytest.fixture
def pool():
    pool = SharedMemoryPool()
    yield pool
    pool.shutdown()


class TestSharedSegment:
    def test_create_and_view(self):
        segment = SharedSegment("seg-create", 64, create=True)
        try:
            view = segment.ndarray((4, 4), "float32")
            view[...] = 1.0
            again = segment.ndarray((4, 4), "float32")
            assert again.sum() == 16.0
        finally:
            segment.unlink()

    def test_attach_existing_segment_sees_same_bytes(self):
        creator = SharedSegment("seg-attach", 16, create=True)
        try:
            creator.ndarray((4,), "int32")[...] = [1, 2, 3, 4]
            attached = SharedSegment("seg-attach", 16, create=False)
            assert attached.ndarray((4,), "int32").tolist() == [1, 2, 3, 4]
        finally:
            creator.unlink()

    def test_duplicate_create_rejected(self):
        segment = SharedSegment("seg-dup", 8, create=True)
        try:
            with pytest.raises(SharedMemoryError):
                SharedSegment("seg-dup", 8, create=True)
        finally:
            segment.unlink()

    def test_attach_missing_segment_rejected(self):
        with pytest.raises(SharedMemoryError):
            SharedSegment("seg-missing", 8, create=False)

    def test_view_bounds_checked(self):
        segment = SharedSegment("seg-bounds", 16, create=True)
        try:
            with pytest.raises(SharedMemoryError):
                segment.ndarray((100,), "float32")
        finally:
            segment.unlink()

    def test_invalid_sizes_and_backends(self):
        with pytest.raises(SharedMemoryError):
            SharedSegment("seg-zero", 0, create=True)
        with pytest.raises(SharedMemoryError):
            SharedSegment("seg-backend", 8, create=True, backend="mmapfoo")

    def test_closed_segment_rejects_access(self):
        segment = SharedSegment("seg-close", 8, create=True)
        segment.close()
        with pytest.raises(SharedMemoryError):
            _ = segment.buffer
        segment.unlink()


class TestSharedMemoryPool:
    def test_allocate_tensor_is_shared(self, pool):
        tensor = pool.allocate_tensor((4, 4), "float32")
        assert tensor.is_shared
        assert pool.live_segments == 1
        assert pool.bytes_in_flight == 64

    def test_share_tensor_copies_values(self, pool):
        source = from_numpy(np.arange(6, dtype=np.float32))
        shared = pool.share_tensor(source)
        assert shared.is_shared
        np.testing.assert_array_equal(shared.numpy(), source.numpy())

    def test_refcount_release_frees_segment(self, pool):
        tensor = pool.allocate_tensor((8,), initial_refcount=2)
        name = tensor.segment.name
        assert pool.release(name) == 1
        assert pool.contains(name)
        assert pool.release(name) == 0
        assert not pool.contains(name)
        assert pool.bytes_in_flight == 0

    def test_retain_increases_refcount(self, pool):
        tensor = pool.allocate_tensor((8,))
        name = tensor.segment.name
        assert pool.retain(name, 3) == 4
        assert pool.refcount(name) == 4

    def test_over_release_rejected(self, pool):
        tensor = pool.allocate_tensor((8,))
        name = tensor.segment.name
        with pytest.raises(SharedMemoryError):
            pool.release(name, 5)

    def test_release_unknown_segment_rejected(self, pool):
        with pytest.raises(SharedMemoryError):
            pool.release("nope")

    def test_retain_release_argument_validation(self, pool):
        tensor = pool.allocate_tensor((8,))
        with pytest.raises(ValueError):
            pool.retain(tensor.segment.name, 0)
        with pytest.raises(ValueError):
            pool.release(tensor.segment.name, 0)

    def test_attach_rebuilds_view_over_same_bytes(self, pool):
        tensor = pool.allocate_tensor((2, 3), "float32")
        tensor.numpy()[...] = 5.0
        rebuilt = pool.attach(
            tensor.segment.name, (2, 3), "float32", offset=tensor.segment_offset
        )
        assert rebuilt.numpy().sum() == 30.0
        rebuilt.numpy()[0, 0] = 9.0
        assert tensor.numpy()[0, 0] == 9.0

    def test_peak_bytes_tracks_high_water_mark(self, pool):
        a = pool.allocate_tensor((1024,), "uint8")
        b = pool.allocate_tensor((1024,), "uint8")
        pool.release(a.segment.name)
        pool.release(b.segment.name)
        assert pool.peak_bytes == 2048
        assert pool.bytes_in_flight == 0

    def test_shutdown_clears_everything(self):
        pool = SharedMemoryPool()
        pool.allocate_tensor((16,))
        pool.allocate_tensor((16,))
        pool.shutdown()
        assert pool.live_segments == 0
        assert pool.bytes_in_flight == 0


class TestTensorPayload:
    def test_shared_payload_is_tiny_and_zero_copy(self, pool):
        tensor = pool.allocate_tensor((64, 3, 8, 8), "float32")
        tensor.numpy()[...] = 1.0
        payload = TensorPayload.from_shared(tensor)
        assert payload.payload_nbytes < 1024
        assert payload.tensor_nbytes == tensor.nbytes
        rebuilt = payload.unpack(pool)
        assert rebuilt.shares_memory_with(tensor)

    def test_from_shared_requires_shared_tensor(self):
        with pytest.raises(PayloadError):
            TensorPayload.from_shared(from_numpy(np.zeros(3, dtype=np.float32)))

    def test_inline_payload_carries_bytes(self):
        tensor = from_numpy(np.arange(10, dtype=np.int64))
        payload = TensorPayload.inline(tensor)
        assert payload.payload_nbytes >= tensor.nbytes
        rebuilt = payload.unpack()
        np.testing.assert_array_equal(rebuilt.numpy(), tensor.numpy())
        assert not rebuilt.shares_memory_with(tensor)

    def test_pack_chooses_cheapest_representation(self, pool):
        shared = pool.allocate_tensor((4,))
        plain = from_numpy(np.zeros(4, dtype=np.float32))
        assert TensorPayload.pack(shared).is_shared
        assert not TensorPayload.pack(plain).is_shared

    def test_unpack_shared_requires_pool(self, pool):
        payload = TensorPayload.from_shared(pool.allocate_tensor((4,)))
        with pytest.raises(PayloadError):
            payload.unpack()

    def test_unpack_released_segment_fails_loudly(self, pool):
        tensor = pool.allocate_tensor((4,))
        payload = TensorPayload.from_shared(tensor)
        pool.release(tensor.segment.name)
        with pytest.raises(PayloadError):
            payload.unpack(pool)

    def test_sliced_view_payload_preserves_offset(self, pool):
        tensor = pool.allocate_tensor((10, 4), "float32")
        tensor.numpy()[...] = np.arange(40, dtype=np.float32).reshape(10, 4)
        view = tensor.slice_rows(3, 7)
        payload = TensorPayload.from_shared(view)
        rebuilt = payload.unpack(pool)
        np.testing.assert_array_equal(rebuilt.numpy(), tensor.numpy()[3:7])

    def test_dict_roundtrip(self, pool):
        tensor = pool.allocate_tensor((2, 2), "float32")
        payload = TensorPayload.from_shared(tensor)
        assert TensorPayload.from_dict(payload.to_dict()) == payload
        inline = TensorPayload.inline(from_numpy(np.ones(3, dtype=np.float32)))
        assert TensorPayload.from_dict(inline.to_dict()) == inline


class TestBatchPayload:
    def test_pack_and_unpack_batch(self, pool):
        batch = {
            "inputs": pool.share_tensor(from_numpy(np.ones((8, 4), dtype=np.float32))),
            "targets": pool.share_tensor(from_numpy(np.zeros(8, dtype=np.int64))),
        }
        payload = BatchPayload.pack(batch, batch_index=3, epoch=1)
        assert payload.batch_size == 8
        assert payload.key() == (1, 3)
        assert len(payload.segment_names) == 2
        rebuilt = payload.unpack(pool)
        assert set(rebuilt) == {"inputs", "targets"}
        assert rebuilt["inputs"].shares_memory_with(batch["inputs"])

    def test_empty_batch_rejected(self):
        with pytest.raises(PayloadError):
            BatchPayload.pack({}, batch_index=0, epoch=0)

    def test_payload_wire_size_is_independent_of_tensor_size(self, pool):
        small = BatchPayload.pack(
            {"x": pool.allocate_tensor((1, 4))}, batch_index=0, epoch=0
        )
        large = BatchPayload.pack(
            {"x": pool.allocate_tensor((512, 3, 32, 32))}, batch_index=1, epoch=0
        )
        assert large.tensor_nbytes > 1000 * small.tensor_nbytes
        assert large.payload_nbytes == small.payload_nbytes

    def test_metadata_and_slice_bounds_carry_through(self, pool):
        payload = BatchPayload.pack(
            {"x": pool.allocate_tensor((4, 2))},
            batch_index=5,
            epoch=2,
            producer_batch_id=1,
            slice_start=8,
            slice_stop=12,
            metadata={"origin": "test"},
        )
        assert payload.producer_batch_id == 1
        assert (payload.slice_start, payload.slice_stop) == (8, 12)
        assert payload.metadata["origin"] == "test"
