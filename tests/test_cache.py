"""Tests for the budgeted epoch cache (repro.cache).

Covers the :class:`~repro.cache.BatchCache` policies and budget accounting,
the pool's cached-bytes bucket (disjoint from ``bytes_in_flight``), the
producer integration in both epoch runners (repeat epochs republished from
shared memory, partial caching, eviction fallbacks), the uniform
``stats()`` dicts, and cache-hold draining on every early-exit path
(stop, skip-epoch, consumer churn).
"""

import threading
import time

import pytest

import repro
from repro.cache import BatchCache, CachePolicy, CachedEpochSource
from repro.core import ConsumerConfig, ProducerConfig, TensorProducer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.tensor import SharedMemoryPool
from repro.tensor.errors import SharedMemoryError
from repro.tensor.payload import BatchPayload


def small_loader(size=24, batch_size=4, image_size=8, num_workers=0):
    dataset = SyntheticImageDataset(size, image_size=image_size, payload_bytes=16)
    pipeline = Compose(
        [DecodeJpeg(height=image_size, width=image_size), Normalize(), ToTensor()]
    )
    return DataLoader(
        dataset, batch_size=batch_size, transform=pipeline, num_workers=num_workers
    )


def stage_batch(pool, n=64):
    """One staged single-segment payload of ``n`` float32 bytes*4."""
    tensor = pool.allocate_tensor((n,), "float32")
    return BatchPayload.pack({"x": tensor}, batch_index=0, epoch=0)


def assert_drained(session, timeout=5.0):
    """bytes_in_flight AND cached_bytes must reach zero BEFORE pool.shutdown()
    (which zeroes the accounting and would make the assertion vacuous)."""
    deadline = time.time() + timeout
    pool = session.pool
    while (pool.bytes_in_flight or pool.cached_bytes) and time.time() < deadline:
        time.sleep(0.02)
    assert pool.bytes_in_flight == 0
    assert pool.cached_bytes == 0
    assert pool.live_segments == 0


def run_consumers(session, n, max_epochs, results, stop_after=None, batch_size=None):
    def consume(name):
        kwargs = dict(consumer_id=name, max_epochs=max_epochs, receive_timeout=20)
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        consumer = session.consumer(ConsumerConfig(**kwargs))
        seen = []
        for batch in consumer:
            seen.append(tuple(batch["index"].tolist()))
            if stop_after is not None and len(seen) >= stop_after:
                break
        results[name] = seen
        consumer.close()

    threads = [
        threading.Thread(target=consume, args=(f"c{i}",)) for i in range(n)
    ]
    for thread in threads:
        thread.start()
    return threads


# ---------------------------------------------------------------------------
# Pool: cached-bytes accounting
# ---------------------------------------------------------------------------


class TestPoolCachedAccounting:
    def test_cache_hold_moves_bytes_between_buckets(self):
        pool = SharedMemoryPool()
        tensor = pool.allocate_tensor((16,), "float32")
        name = tensor.segment.name
        nbytes = 64
        assert pool.bytes_in_flight == nbytes and pool.cached_bytes == 0

        pool.retain_cached(name)
        assert pool.bytes_in_flight == 0 and pool.cached_bytes == nbytes

        # A consumer hold on a cached segment does not change buckets.
        pool.retain(name)
        assert pool.bytes_in_flight == 0 and pool.cached_bytes == nbytes

        # Last cache hold released while the consumer still reads: bytes
        # move back to in-flight.
        pool.release_cached(name)
        assert pool.bytes_in_flight == nbytes and pool.cached_bytes == 0
        assert pool.contains(name)

        pool.release(name)  # consumer hold
        pool.release(name)  # original producer hold; frees
        assert pool.bytes_in_flight == 0 and not pool.contains(name)

    def test_release_cached_frees_and_unlinks_eagerly(self):
        pool = SharedMemoryPool()
        tensor = pool.allocate_tensor((8,), "float32")
        name = tensor.segment.name
        pool.retain_cached(name)
        pool.release(name)  # producer hold gone; only the cache hold remains
        assert pool.cached_bytes == 32 and pool.bytes_in_flight == 0
        assert pool.release_cached(name) == 0
        assert not pool.contains(name)
        assert pool.cached_bytes == 0 and pool.bytes_in_flight == 0

    def test_plain_release_cannot_consume_cache_holds(self):
        pool = SharedMemoryPool()
        tensor = pool.allocate_tensor((8,), "float32")
        name = tensor.segment.name
        pool.retain_cached(name)
        pool.release(name)  # the producer hold
        with pytest.raises(SharedMemoryError):
            pool.release(name)  # only the cache hold is left
        assert pool.release_cached(name) == 0

    def test_release_cached_is_atomic_no_op_when_gone(self):
        pool = SharedMemoryPool()
        assert pool.release_cached("never-existed") is None

    def test_shutdown_zeroes_both_buckets(self):
        pool = SharedMemoryPool()
        a = pool.allocate_tensor((8,), "float32")
        pool.allocate_tensor((8,), "float32")
        pool.retain_cached(a.segment.name)
        pool.shutdown()
        assert pool.bytes_in_flight == 0 and pool.cached_bytes == 0


# ---------------------------------------------------------------------------
# BatchCache unit behaviour
# ---------------------------------------------------------------------------


class TestBatchCache:
    def test_policy_parse(self):
        assert CachePolicy.parse("ALL") is CachePolicy.ALL
        assert CachePolicy.parse(CachePolicy.LRU) is CachePolicy.LRU
        with pytest.raises(ValueError, match="unknown cache policy"):
            CachePolicy.parse("sometimes")

    def test_budget_required_for_partial_policies(self):
        pool = SharedMemoryPool()
        with pytest.raises(ValueError, match="byte budget"):
            BatchCache(pool, policy="lru")
        with pytest.raises(ValueError, match="positive"):
            BatchCache(pool, policy="mru", budget_bytes=0)

    def test_put_retains_and_republish_rekeys(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        payload = stage_batch(pool)
        name = payload.segment_names[0]
        assert cache.put(0, payload, segment_names=payload.segment_names,
                         nbytes=payload.tensor_nbytes)
        assert pool.cached_bytes == payload.tensor_nbytes
        # The producer drops its staging hold; the cache keeps the segment.
        pool.release(name)
        assert pool.contains(name)

        replayed = cache.republish(0, epoch=5, is_last_in_epoch=True)
        assert replayed is not None
        assert replayed.epoch == 5 and replayed.is_last_in_epoch
        assert replayed.segment_names == payload.segment_names
        assert pool.refcount(name) == 2  # cache hold + fresh producer hold
        pool.release(name)  # the republish hold
        assert cache.stats().hits == 1

        cache.clear()
        assert not pool.contains(name)
        assert pool.cached_bytes == 0

    def test_duplicate_put_only_bumps_recency(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        payload = stage_batch(pool)
        assert cache.put(0, payload, segment_names=payload.segment_names, nbytes=64)
        assert not cache.put(0, payload, segment_names=payload.segment_names, nbytes=64)
        assert pool.refcount(payload.segment_names[0]) == 2  # producer + ONE cache hold
        cache.clear()

    def test_lru_evicts_oldest_and_mru_rejects_newest(self):
        pool = SharedMemoryPool()
        payloads = [stage_batch(pool) for _ in range(4)]
        nbytes = payloads[0].tensor_nbytes

        lru = BatchCache(pool, policy="lru", budget_bytes=2 * nbytes)
        for i in range(3):
            lru.put(i, payloads[i], segment_names=payloads[i].segment_names, nbytes=nbytes)
        stats = lru.stats()
        assert stats.entries == 2 and stats.evictions == 1
        assert lru.republish(0, epoch=1) is None  # index 0 was the LRU victim
        assert lru.republish(2, epoch=1) is not None
        lru.clear()

        mru = BatchCache(pool, policy="mru", budget_bytes=2 * nbytes)
        for i in range(4):
            mru.put(i, payloads[i], segment_names=payloads[i].segment_names, nbytes=nbytes)
        stats = mru.stats()
        assert stats.entries == 2 and stats.evictions == 0 and stats.rejected_inserts == 2
        assert mru.republish(0, epoch=1) is not None  # the first-cached prefix stays
        assert mru.republish(3, epoch=1) is None
        mru.clear()
        for payload in payloads:
            name = payload.segment_names[0]
            while pool.release_if_present(name):
                pass
            pool.release_if_present(name)
        assert pool.cached_bytes == 0

    def test_unbudgeted_policies_reject_a_budget(self):
        pool = SharedMemoryPool()
        with pytest.raises(ValueError, match="takes no byte budget"):
            BatchCache(pool, policy="all", budget_bytes=1 << 20)
        with pytest.raises(ValueError, match="takes no byte budget"):
            BatchCache(pool, policy="none", budget_bytes=1 << 20)

    def test_planned_hits_protected_from_lru_eviction(self):
        """The cyclic-access thrash guard: this epoch's miss inserts must not
        evict the hits the epoch has planned but not served yet — otherwise a
        budgeted LRU degrades every hit to a fallback load forever."""
        pool = SharedMemoryPool()
        payloads = [stage_batch(pool) for _ in range(4)]
        nbytes = payloads[0].tensor_nbytes
        cache = BatchCache(pool, policy="lru", budget_bytes=2 * nbytes)
        for i in (0, 1):
            cache.put(i, payloads[i], segment_names=payloads[i].segment_names, nbytes=nbytes)

        cache.begin_epoch({0, 1})
        # Budget is full of protected entries: the insert is refused, not
        # satisfied by eating a planned hit.
        assert not cache.put(2, payloads[2], segment_names=payloads[2].segment_names,
                             nbytes=nbytes)
        assert cache.stats().rejected_inserts == 1
        assert cache.republish(0, epoch=1) is not None  # still there

        # Serving lifted index 0's protection; now it is fair game.
        assert cache.put(2, payloads[2], segment_names=payloads[2].segment_names,
                         nbytes=nbytes)
        assert cache.republish(0, epoch=1) is None      # evicted (served already)
        assert cache.republish(1, epoch=1) is not None  # protected hit survived
        cache.end_epoch()
        cache.clear()

    def test_oversized_entry_never_inserted(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="lru", budget_bytes=10)
        payload = stage_batch(pool)
        assert not cache.put(0, payload, segment_names=payload.segment_names, nbytes=64)
        assert cache.stats().rejected_inserts == 1
        assert pool.cached_bytes == 0

    def test_eviction_with_no_other_holds_unlinks(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="lru", budget_bytes=64)
        first = stage_batch(pool, n=16)
        second = stage_batch(pool, n=16)
        cache.put(0, first, segment_names=first.segment_names, nbytes=64)
        pool.release(first.segment_names[0])  # staging hold gone; cache-only
        cache.put(1, second, segment_names=second.segment_names, nbytes=64)
        assert not pool.contains(first.segment_names[0])  # evicted → unlinked eagerly
        cache.clear()

    def test_plan_epoch_and_complete_marking(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        for i in (0, 1, 3):
            payload = stage_batch(pool, n=8)
            cache.put(i, payload, segment_names=payload.segment_names, nbytes=32)
        assert cache.plan_epoch(3) == {0, 1}
        assert cache.plan_epoch(None) == frozenset()
        cache.mark_epoch_complete(3)  # index 2 missing → not replayable
        assert cache.replayable_epoch_length() is None
        cache.mark_epoch_complete(2)
        assert cache.replayable_epoch_length() == 2
        cache.clear()


# ---------------------------------------------------------------------------
# Config and API surface
# ---------------------------------------------------------------------------


class TestCacheConfig:
    def test_policy_validated_at_construction(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            ProducerConfig(cache_policy="banana")
        with pytest.raises(ValueError, match="requires cache_bytes"):
            ProducerConfig(cache_policy="lru")
        with pytest.raises(ValueError, match="positive"):
            ProducerConfig(cache_policy="all", cache_bytes=-1)
        with pytest.raises(ValueError, match="takes no cache_bytes"):
            ProducerConfig(cache_policy="all", cache_bytes=1 << 20)
        with pytest.raises(ValueError, match="takes no cache_bytes"):
            ProducerConfig(cache_policy="none", cache_bytes=1 << 20)
        assert ProducerConfig(cache_policy="mru", cache_bytes=1 << 20).cache_bytes == 1 << 20

    def test_serve_cache_alias(self):
        session = repro.serve(
            small_loader(), address="inproc://cache-alias", cache="all", start=False
        )
        try:
            assert session.producer.cache is not None
            assert session.producer.cache.policy is CachePolicy.ALL
        finally:
            session.shutdown()

    def test_serve_rejects_cache_and_cache_policy_together(self):
        with pytest.raises(TypeError, match="not both"):
            repro.serve(
                small_loader(),
                address="inproc://cache-dup",
                cache="all",
                cache_policy="lru",
                start=False,
            )

    def test_producer_without_cache_has_none(self):
        producer = TensorProducer(small_loader(), address="inproc://cache-none")
        try:
            assert producer.cache is None
            stats = producer.stats()
            assert stats["cache"]["policy"] == "none"
            assert stats["cache"]["hits"] == 0
        finally:
            producer.join(timeout=0.1)


# ---------------------------------------------------------------------------
# Producer integration: default runner
# ---------------------------------------------------------------------------


class TestCachedEpochs:
    @pytest.mark.parametrize("depth", [1, 3])
    def test_repeat_epochs_skip_the_loader(self, depth):
        session = repro.serve(
            small_loader(),
            address=f"inproc://cache-epochs-{depth}",
            epochs=3,
            cache="all",
            pipeline_depth=depth,
            start=False,
        )
        results = {}
        threads = run_consumers(session, 2, 3, results)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)

        stats = session.stats()["producer"]
        assert stats["batches_loaded"] == 6          # epoch 0 only
        assert stats["payloads_published"] == 18     # 3 epochs broadcast
        assert stats["cache"]["misses"] == 6
        assert stats["cache"]["hits"] == 12
        assert stats["cache"]["insertions"] == 6
        for seen in results.values():
            assert len(seen) == 18
            assert seen[:6] == seen[6:12] == seen[12:18]  # replay is identical
        assert_drained(session)
        session.shutdown()
        assert session.pool.bytes_in_flight == 0
        assert session.pool.cached_bytes == 0

    def test_partial_mru_cache_serves_prefix_and_loads_tail(self):
        loader = small_loader()
        probe = repro.serve(loader, address="inproc://cache-probe", start=False)
        probe.shutdown()
        # Budget for exactly half the epoch (6 batches of identical size).
        batch_nbytes = None
        pool = SharedMemoryPool()
        staged = {
            name: pool.share_tensor(tensor)
            for name, tensor in next(iter(loader)).items()
        }
        batch_nbytes = sum(t.nbytes for t in staged.values())
        pool.shutdown()

        session = repro.serve(
            small_loader(),
            address="inproc://cache-partial",
            epochs=2,
            cache="mru",
            cache_bytes=3 * batch_nbytes,
            start=False,
        )
        results = {}
        threads = run_consumers(session, 1, 2, results)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        stats = session.stats()["producer"]
        # Epoch 0 loads all 6; epoch 1 hits the cached prefix of 3.
        assert stats["batches_loaded"] == 9
        assert stats["cache"]["hits"] == 3
        assert stats["cache"]["rejected_inserts"] >= 3
        assert results["c0"][:6] == results["c0"][6:12]
        assert_drained(session)
        session.shutdown()

    def test_budgeted_lru_produces_hits_across_epochs(self):
        """End-to-end thrash regression: with a half-epoch LRU budget, repeat
        epochs must actually hit the cache (the unprotected policy evicted
        every planned hit before serving it — zero hits forever)."""
        # 6 batches/epoch of identical size; budget fits 3.
        pool = SharedMemoryPool()
        loader = small_loader()
        staged = {
            name: pool.share_tensor(tensor)
            for name, tensor in next(iter(loader)).items()
        }
        batch_nbytes = sum(t.nbytes for t in staged.values())
        pool.shutdown()

        session = repro.serve(
            small_loader(),
            address="inproc://cache-lru-hits",
            epochs=3,
            cache="lru",
            cache_bytes=3 * batch_nbytes,
            start=False,
        )
        results = {}
        threads = run_consumers(session, 1, 3, results)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        stats = session.stats()["producer"]
        assert stats["cache"]["hits"] >= 6  # 3 planned hits per repeat epoch
        assert stats["batches_loaded"] < 18  # strictly better than no cache
        assert results["c0"][:6] == results["c0"][6:12] == results["c0"][12:18]
        assert_drained(session)
        session.shutdown()

    def test_consumer_sees_correct_epoch_keys_on_replay(self):
        """Replayed payloads are re-keyed: (epoch, index) acks stay unique."""
        session = repro.serve(
            small_loader(size=8, batch_size=4),
            address="inproc://cache-rekey",
            epochs=3,
            cache="all",
            start=False,
        )
        epochs_seen = []
        def consume():
            consumer = session.consumer(
                ConsumerConfig(consumer_id="rk", max_epochs=3, receive_timeout=20)
            )
            for payload in consumer:
                pass
            epochs_seen.append(consumer.epochs_seen)
            assert consumer.duplicates_dropped == 0
            consumer.close()
        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.2)
        session.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert epochs_seen == [3]
        assert_drained(session)
        session.shutdown()


# ---------------------------------------------------------------------------
# Producer integration: flexible runner
# ---------------------------------------------------------------------------


class TestFlexibleCachedEpochs:
    def test_flexible_full_replay(self):
        session = repro.serve(
            small_loader(),
            address="inproc://cache-flex",
            epochs=3,
            cache="all",
            flexible_batching=True,
            producer_batch_size=8,
            start=False,
        )
        results = {}
        threads = run_consumers(session, 2, 3, results, batch_size=4)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        stats = session.stats()["producer"]
        assert stats["batches_loaded"] == 3     # 3 producer batches, epoch 0 only
        assert stats["cache"]["hits"] == 6      # replayed twice
        for seen in results.values():
            assert len(seen) == 18              # 6 slices per epoch per consumer
            assert seen[:6] == seen[6:12] == seen[12:18]
        assert_drained(session)
        session.shutdown()

    def test_flexible_flushes_cache_on_geometry_change(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        payload = stage_batch(pool, n=8)
        cache.put(0, payload, segment_names=payload.segment_names, nbytes=32, rows=16)
        cache.mark_epoch_complete(1)
        assert cache.replayable_epoch_length(rows=16) == 1
        assert cache.replayable_epoch_length(rows=32) is None
        cache.clear()


# ---------------------------------------------------------------------------
# Early-exit paths drain cache holds
# ---------------------------------------------------------------------------


class TestCacheDrains:
    def test_stop_mid_epoch_drains_cache_holds(self):
        session = repro.serve(
            small_loader(size=64, batch_size=4),
            address="inproc://cache-stop",
            epochs=None,
            cache="all",
            pipeline_depth=3,
            start=False,
        )
        results = {}
        threads = run_consumers(session, 1, 1, results, stop_after=5)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert session.pool.cached_bytes > 0  # the cache really was filling
        session.producer.stop()
        session.shutdown()
        assert session.pool.bytes_in_flight == 0
        assert session.pool.cached_bytes == 0
        assert session.pool.live_segments == 0

    def test_consumer_churn_with_cache(self):
        session = repro.serve(
            small_loader(size=32, batch_size=4),
            address="inproc://cache-churn",
            epochs=3,
            cache="all",
            start=False,
        )
        results = {}
        # One consumer leaves after 3 batches, the other rides all 3 epochs.
        leaver = run_consumers(session, 1, 3, results, stop_after=3)
        def stayer():
            consumer = session.consumer(
                ConsumerConfig(consumer_id="stay", max_epochs=3, receive_timeout=20)
            )
            results["stay"] = [tuple(b["index"].tolist()) for b in consumer]
            consumer.close()
        stay_thread = threading.Thread(target=stayer)
        stay_thread.start()
        time.sleep(0.2)
        session.start()
        for thread in leaver + [stay_thread]:
            thread.join(timeout=30)
        assert not stay_thread.is_alive()
        assert len(results["stay"]) == 24  # 8 batches x 3 epochs
        assert results["stay"][:8] == results["stay"][8:16]
        assert_drained(session)
        session.shutdown()
        assert session.pool.cached_bytes == 0

    def test_skip_epoch_with_cache_drains(self):
        """All consumers leave mid-epoch while a newcomer waits: the epoch is
        abandoned; staged, cached and window holds must all be returned."""
        session = repro.serve(
            small_loader(size=48, batch_size=4),
            address="inproc://cache-skip",
            epochs=2,
            cache="all",
            pipeline_depth=2,
            rubberband_fraction=0.0,  # newcomers always wait for next epoch
            start=False,
        )
        results = {}
        early = run_consumers(session, 1, 2, results, stop_after=3)
        time.sleep(0.2)
        session.start()
        for thread in early:
            thread.join(timeout=30)
        # Now a late consumer arrives; the current epoch has nobody active.
        late_results = {}
        def late():
            consumer = session.consumer(
                ConsumerConfig(consumer_id="late", max_epochs=1, receive_timeout=20)
            )
            late_results["late"] = [tuple(b["index"].tolist()) for b in consumer]
            consumer.close()
        late_thread = threading.Thread(target=late)
        late_thread.start()
        late_thread.join(timeout=30)
        assert not late_thread.is_alive()
        assert len(late_results["late"]) == 12
        assert_drained(session)
        session.shutdown()
        assert session.pool.bytes_in_flight == 0
        assert session.pool.cached_bytes == 0


# ---------------------------------------------------------------------------
# CachedEpochSource
# ---------------------------------------------------------------------------


class TestCachedEpochSource:
    def test_plan_and_miss_source_loads_only_misses(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        loader = small_loader(size=16, batch_size=4)

        # Pre-fill indices 0 and 2 as if epoch 0 had cached them.
        for index in (0, 2):
            staged = {
                name: pool.share_tensor(tensor)
                for name, tensor in loader._load_batch(list(loader.batch_sampler)[index]).items()
            }
            payload = BatchPayload.pack(staged, batch_index=index, epoch=0)
            cache.put(index, payload, segment_names=payload.segment_names,
                      nbytes=payload.tensor_nbytes)

        source = CachedEpochSource(cache, loader, epoch=1)
        assert source.plan == {0, 2}
        assert not source.all_miss and not source.full_replay
        assert source.miss_indices() == [1, 3]
        missed_iter, close = source.open_misses(num_workers=0)
        missed = list(missed_iter)
        if close is not None:
            close()
        assert [index for index, _ in missed] == [1, 3]
        # Miss batches carry the right samples for their epoch positions.
        assert missed[0][1]["index"].tolist() == [4, 5, 6, 7]

        hit = source.hit(0)
        assert hit is not None and hit.epoch == 1
        for name in hit.segment_names:
            pool.release(name)  # the republish hold
        cache.clear()
        pool.shutdown()

    def test_partial_cache_pins_composition_under_shuffle(self):
        """A reshuffling sampler must not skew per-epoch sample coverage:
        misses of a partially cached epoch reload the composition of the
        epoch that filled the cache, so each epoch still covers every sample
        exactly once (the replay semantics, not a hit/miss mixture of two
        different permutations)."""
        dataset = SyntheticImageDataset(24, image_size=8, payload_bytes=16)
        pipeline = Compose([DecodeJpeg(height=8, width=8), Normalize(), ToTensor()])
        loader = DataLoader(dataset, batch_size=4, transform=pipeline, shuffle=True, seed=11)
        batch_nbytes = None
        pool = SharedMemoryPool()
        staged = {
            name: pool.share_tensor(tensor) for name, tensor in next(iter(loader)).items()
        }
        batch_nbytes = sum(t.nbytes for t in staged.values())
        pool.shutdown()

        session = repro.serve(
            loader,
            address="inproc://cache-shuffle",
            epochs=3,
            cache="mru",
            cache_bytes=3 * batch_nbytes,  # half the epoch
            start=False,
        )
        results = {}
        threads = run_consumers(session, 1, 3, results)
        time.sleep(0.2)
        session.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        epochs = [results["c0"][i * 6 : (i + 1) * 6] for i in range(3)]
        for seen in epochs:
            flattened = sorted(i for batch in seen for i in batch)
            assert flattened == list(range(24))  # full coverage, no dupes
        # Cached-era epochs replay the filling epoch's composition exactly.
        assert epochs[1] == epochs[0] and epochs[2] == epochs[0]
        stats = session.stats()["producer"]
        assert stats["cache"]["hits"] >= 6
        assert_drained(session)
        session.shutdown()

    def test_partial_cache_misses_use_loader_workers(self):
        """Miss loading of a partially cached epoch goes through the loader's
        prefetch machinery (bounded, parallel), not blocking per-batch loads
        on the stage worker."""
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")
        loader = small_loader(size=32, batch_size=4, num_workers=2)
        for index in (0, 1):
            staged = {
                name: pool.share_tensor(tensor)
                for name, tensor in loader._load_batch(
                    list(loader.batch_sampler)[index]
                ).items()
            }
            payload = BatchPayload.pack(staged, batch_index=index, epoch=0)
            cache.put(index, payload, segment_names=payload.segment_names,
                      nbytes=payload.tensor_nbytes)
        source = CachedEpochSource(cache, loader, epoch=1)
        misses, close = source.open_misses(max_in_flight=3, num_workers=2)
        first_index, first_batch = next(iter(misses))
        assert first_index == 2
        assert first_batch["index"].tolist() == [8, 9, 10, 11]
        assert close is not None
        close()
        cache.clear()
        pool.shutdown()

    def test_unsized_loader_plans_nothing(self):
        pool = SharedMemoryPool()
        cache = BatchCache(pool, policy="all")

        class Unsized:
            def __iter__(self):
                return iter(())

        source = CachedEpochSource(cache, Unsized(), epoch=1)
        assert source.total is None
        assert source.all_miss
