"""Unit tests for the model zoo, workloads, trainer stats and loading pipelines."""

import pytest

from repro.hardware import A100_SERVER, AWS_G5_2XLARGE, H100_SERVER, Machine
from repro.hardware.metrics import GB
from repro.simulation import Simulator
from repro.training import (
    MODEL_ZOO,
    CollocationRunner,
    SharingStrategy,
    TrainerStats,
    TrainingWorkload,
    get_model,
    list_models,
)
from repro.training.loading import (
    BatchSource,
    BatchTicket,
    ConventionalLoading,
    TensorSocketLoading,
)
from repro.training.model_zoo import PAPER_NAMES
from repro.training.trainer import trainer_process


class TestModelZoo:
    def test_all_paper_models_present(self):
        expected = {
            "resnet18",
            "regnetx_002",
            "regnetx_004",
            "mobilenet_s",
            "mobilenet_l",
            "clmr",
            "dalle2_prior",
            "qwen25_05b",
        }
        assert expected == set(MODEL_ZOO)

    def test_lookup_by_paper_display_name(self):
        assert get_model("MobileNet S").name == "mobilenet_s"
        assert get_model("Qwen2.5 0.5B").name == "qwen25_05b"
        assert get_model("resnet18").name == "resnet18"
        with pytest.raises(KeyError):
            get_model("AlexNet")

    def test_every_paper_name_resolves(self):
        for display_name in PAPER_NAMES:
            assert get_model(display_name) is not None

    def test_list_models_by_family(self):
        assert "clmr" in list_models("audio_classification")
        assert set(list_models()) == set(MODEL_ZOO)

    def test_image_models_are_input_bound_at_12_cores(self):
        # The premise of Figure 8: with 12 vCPUs per GPU the small image models
        # cannot be fed by their own loader.
        for name in ("mobilenet_s", "regnetx_002", "resnet18"):
            assert get_model(name).is_input_bound(cores=12)
        assert not get_model("mobilenet_l").is_input_bound(cores=12)

    def test_llm_is_gpu_bound(self):
        qwen = get_model("qwen25_05b")
        assert not qwen.is_input_bound(cores=8)
        assert qwen.tokens_per_sample > 0

    def test_gpu_bound_throughput_ordering_matches_model_size(self):
        # Smaller models have higher GPU-bound throughput ceilings.
        assert (
            get_model("mobilenet_s").gpu_bound_samples_per_second()
            > get_model("resnet18").gpu_bound_samples_per_second()
            > get_model("mobilenet_l").gpu_bound_samples_per_second()
        )

    def test_dalle_has_auxiliary_gpu_work(self):
        dalle = get_model("dalle2_prior")
        assert dalle.aux_gpu_seconds_per_sample > 0
        assert dalle.gpu_bound_samples_per_second() < 1.0 / dalle.gpu_seconds_per_sample

    def test_with_batch_size_returns_new_profile(self):
        model = get_model("resnet18")
        resized = model.with_batch_size(512)
        assert resized.default_batch_size == 512
        assert model.default_batch_size == 128


class TestWorkload:
    def test_defaults_and_per_batch_costs(self):
        workload = TrainingWorkload(model=get_model("resnet18"), gpu_index=1)
        assert workload.batch_size == 128
        assert workload.name == "resnet18"
        assert workload.cpu_seconds_per_batch == pytest.approx(
            128 * get_model("resnet18").cpu_seconds_per_sample
        )
        assert workload.h2d_bytes_per_batch == 128 * get_model("resnet18").h2d_bytes_per_sample

    def test_accepts_model_by_name(self):
        workload = TrainingWorkload(model="mobilenet_s")
        assert workload.model.name == "mobilenet_s"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingWorkload(model="resnet18", batch_size=0)
        with pytest.raises(ValueError):
            TrainingWorkload(model="resnet18", gpu_index=-1)
        with pytest.raises(ValueError):
            TrainingWorkload(model="resnet18", start_delay_s=-1)


class TestTrainerStats:
    def test_throughput_excludes_warmup(self):
        stats = TrainerStats(name="t", batch_size=10, warmup_s=10.0)
        stats.started_at = 0.0
        for t in range(1, 21):
            # one batch per second for 20 seconds
            stats.finished_at = float(t)
            stats.samples += 10
            stats.batches += 1
            if t <= 10:
                stats.warmup_samples = stats.samples
            stats.series_times.append(float(t))
            stats.series_samples.append(stats.samples)
        assert stats.samples_per_second() == pytest.approx(10.0)

    def test_record_batch_and_series(self):
        stats = TrainerStats(name="t", batch_size=4, warmup_s=0.0)
        stats.started_at = 0.0
        for t in (1.0, 2.0, 3.0):
            stats.record_batch(t)
        assert stats.samples == 12
        series = stats.throughput_series(window_s=10.0)
        assert series and series[-1][1] > 0

    def test_tokens_per_second(self):
        stats = TrainerStats(name="t", batch_size=8, warmup_s=0.0)
        stats.started_at = 0.0
        stats.record_batch(1.0)
        stats.record_batch(2.0)
        assert stats.tokens_per_second(100) == pytest.approx(stats.samples_per_second() * 100)


class TestLoadingPipelines:
    def _machine(self, spec=AWS_G5_2XLARGE):
        sim = Simulator()
        return sim, Machine(sim, spec)

    def test_batch_ticket_release_callback_fires_once(self):
        released = []
        ticket = BatchTicket(nbytes=10, refs_remaining=2, on_release=lambda: released.append(1))
        ticket.release_one()
        assert released == []
        ticket.release_one()
        assert released == [1]

    def test_conventional_loading_produces_batches(self):
        sim, machine = self._machine()
        pipeline = ConventionalLoading(sim, machine)
        workload = TrainingWorkload(model="mobilenet_s", gpu_index=0, loader_workers=2)
        source = pipeline.attach(workload)
        pipeline.start(duration_s=5.0)
        received = []

        def consumer():
            for _ in range(3):
                ticket = yield source.get()
                received.append(ticket)
                source.done(ticket)

        sim.process(consumer())
        sim.run(until=5.0)
        assert len(received) == 3
        assert machine.storage.total_bytes_read > 0
        assert machine.pcie(0).total_bytes > 0

    def test_tensorsocket_loading_shares_one_stream(self):
        sim, machine = self._machine()
        pipeline = TensorSocketLoading(sim, machine, loader_workers=4, buffer_size=2)
        workloads = [
            TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}") for i in range(3)
        ]
        sources = [pipeline.attach(w) for w in workloads]
        pipeline.start(duration_s=5.0)
        consumed = {i: 0 for i in range(3)}

        def consumer(index):
            source = sources[index]
            while True:
                ticket = yield source.get()
                consumed[index] += 1
                source.done(ticket)

        for index in range(3):
            sim.process(consumer(index))
        sim.run(until=5.0)
        # Every consumer observed (nearly) every produced batch.
        assert min(consumed.values()) >= pipeline.batches_produced - pipeline.buffer_size - 1
        # Staged batch memory was reference-counted back down: the remaining VRAM
        # is the producer overhead plus at most the in-flight buffered batches.
        in_flight_bound = (
            TensorSocketLoading.PRODUCER_VRAM_OVERHEAD_GB * GB
            + machine.gpu(0).context_overhead_bytes
            + machine.gpu(0).base_overhead_bytes
            + 4 * workloads[0].h2d_bytes_per_batch * (pipeline.buffer_size + 2)
        )
        assert machine.gpu(0).vram_in_use <= in_flight_bound

    def test_tensorsocket_requires_attached_workloads(self):
        sim, machine = self._machine()
        pipeline = TensorSocketLoading(sim, machine)
        with pytest.raises(RuntimeError):
            pipeline.start(duration_s=1.0)

    def test_nvlink_used_for_cross_gpu_consumers(self):
        sim = Simulator()
        machine = Machine(sim, A100_SERVER)
        pipeline = TensorSocketLoading(sim, machine, producer_gpu=0, loader_workers=8)
        workloads = [
            TrainingWorkload(model="mobilenet_l", gpu_index=i, name=f"m{i}") for i in range(2)
        ]
        sources = [pipeline.attach(w) for w in workloads]
        pipeline.start(duration_s=3.0)

        def consumer(source):
            while True:
                ticket = yield source.get()
                source.done(ticket)

        for source in sources:
            sim.process(consumer(source))
        sim.run(until=3.0)
        assert machine.nvlink(0, 1).total_bytes > 0
        assert machine.pcie(1).total_bytes == 0


class TestTrainerProcess:
    def test_trainer_consumes_and_records(self):
        sim = Simulator()
        machine = Machine(sim, H100_SERVER)
        workload = TrainingWorkload(model="mobilenet_s", gpu_index=0)
        source = BatchSource(sim, capacity=4, name="feed")
        stats = TrainerStats(name="t", batch_size=workload.batch_size, warmup_s=0.0)

        def feeder():
            while True:
                yield source.put(BatchTicket(nbytes=1, refs_remaining=1))

        sim.process(feeder())
        sim.process(
            trainer_process(sim, machine, workload, source, stats, duration_s=2.0)
        )
        sim.run(until=2.0)
        assert stats.batches > 0
        assert stats.samples == stats.batches * workload.batch_size
        assert machine.gpu(0).utilization() > 0.5

    def test_start_delay_defers_training(self):
        sim = Simulator()
        machine = Machine(sim, H100_SERVER)
        workload = TrainingWorkload(model="mobilenet_s", gpu_index=0, start_delay_s=1.5)
        source = BatchSource(sim, capacity=4, name="feed")
        stats = TrainerStats(name="t", batch_size=workload.batch_size, warmup_s=0.0)

        def feeder():
            while True:
                yield source.put(BatchTicket(nbytes=1, refs_remaining=1))

        sim.process(feeder())
        sim.process(trainer_process(sim, machine, workload, source, stats, duration_s=3.0))
        sim.run(until=3.0)
        assert stats.started_at == pytest.approx(1.5)


class TestCollocationRunner:
    def test_runner_validates_inputs(self):
        runner = CollocationRunner(AWS_G5_2XLARGE, duration_s=30, warmup_s=5)
        with pytest.raises(ValueError):
            runner.run([])
        with pytest.raises(ValueError):
            runner.run([TrainingWorkload(model="clmr", gpu_index=3)])
        with pytest.raises(ValueError):
            CollocationRunner(AWS_G5_2XLARGE, duration_s=10, warmup_s=20)

    def test_worker_budget_split_for_non_shared(self):
        runner = CollocationRunner(
            H100_SERVER,
            strategy=SharingStrategy.NONE,
            total_loader_workers=8,
            duration_s=30,
            warmup_s=5,
        )
        workloads = [
            TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}") for i in range(3)
        ]
        result = runner.run(workloads)
        assert sorted(result.loader_workers.values(), reverse=True) == [3, 3, 2]

    def test_shared_strategy_gets_whole_worker_budget(self):
        runner = CollocationRunner(
            H100_SERVER,
            strategy=SharingStrategy.TENSORSOCKET,
            total_loader_workers=8,
            duration_s=30,
            warmup_s=5,
        )
        result = runner.run(
            [TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}") for i in range(2)]
        )
        assert result.loader_workers == {"__shared__": 8}

    def test_sharing_raises_throughput_for_input_bound_models(self):
        def run(strategy):
            return CollocationRunner(
                H100_SERVER,
                strategy=strategy,
                total_loader_workers=8,
                duration_s=40,
                warmup_s=8,
            ).run(
                [
                    TrainingWorkload(model="mobilenet_s", gpu_index=0, name=f"m{i}")
                    for i in range(4)
                ]
            )

        baseline = run(SharingStrategy.NONE)
        shared = run(SharingStrategy.TENSORSOCKET)
        assert shared.per_model_samples_per_second > 2 * baseline.per_model_samples_per_second
        assert shared.aggregate_samples_per_second == pytest.approx(
            sum(w.samples_per_second for w in shared.workloads)
        )

    def test_result_helpers(self):
        runner = CollocationRunner(
            AWS_G5_2XLARGE,
            strategy=SharingStrategy.TENSORSOCKET,
            total_loader_workers=8,
            duration_s=30,
            warmup_s=5,
        )
        result = runner.run([TrainingWorkload(model="clmr", gpu_index=0, name="clmr-0")])
        assert result.result_for("clmr-0").model == "clmr"
        with pytest.raises(KeyError):
            result.result_for("missing")
        row = result.summary_row()
        assert row["strategy"] == "tensorsocket"
        assert result.samples_per_dollar() is not None
