"""Unit tests for the discrete-event kernel and its resources."""

import pytest

from repro.simulation import (
    Container,
    Interrupt,
    ProcessorSharingResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


class TestEngine:
    def test_timeouts_advance_the_clock_in_order(self):
        sim = Simulator()
        log = []

        def proc(delay, label):
            yield sim.timeout(delay)
            log.append((sim.now, label))

        sim.process(proc(2.0, "b"))
        sim.process(proc(1.0, "a"))
        sim.run()
        assert log == [(1.0, "a"), (2.0, "b")]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []

        def proc(label):
            yield sim.timeout(1.0)
            log.append(label)

        for label in "abc":
            sim.process(proc(label))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_process_return_value_and_join(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3)
            return "done"

        def parent(results):
            value = yield sim.process(child())
            results.append((sim.now, value))

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == [(3.0, "done")]

    def test_run_until_stops_the_clock(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        assert sim.run(until=10.5) == 10.5
        assert sim.now == 10.5

    def test_run_until_process(self):
        sim = Simulator()

        def work():
            yield sim.timeout(4)
            return 42

        process = sim.process(work())
        assert sim.run_until_process(process) == 42

    def test_yielding_non_event_is_an_error(self):
        sim = Simulator()

        def bad():
            yield 5

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_event_success_and_failure_propagation(self):
        sim = Simulator()
        observed = []

        def waiter(event):
            try:
                value = yield event
                observed.append(("ok", value))
            except RuntimeError as exc:
                observed.append(("err", str(exc)))

        good = sim.event()
        bad = sim.event()
        sim.process(waiter(good))
        sim.process(waiter(bad))
        good.succeed("payload")
        bad.fail(RuntimeError("nope"))
        sim.run()
        assert ("ok", "payload") in observed
        assert ("err", "nope") in observed

    def test_event_cannot_trigger_twice(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_waiting_on_already_processed_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("early")
        sim.run()
        collected = []

        def late_waiter():
            value = yield event
            collected.append(value)

        sim.process(late_waiter())
        sim.run()
        assert collected == ["early"]

    def test_interrupt_wakes_a_sleeping_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                log.append(("interrupted", sim.now, interrupt.cause))

        def interrupter(target):
            yield sim.timeout(5)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert log == [("interrupted", 5.0, "wake up")]

    def test_all_of_and_any_of(self):
        sim = Simulator()
        results = {}

        def waiter():
            both = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(2, "b")])
            results["all"] = (sim.now, both)
            first = yield sim.any_of([sim.timeout(5, "x"), sim.timeout(3, "y")])
            results["any"] = (sim.now, first)

        sim.process(waiter())
        sim.run()
        assert results["all"] == (2.0, ["a", "b"])
        assert results["any"] == (5.0, "y")

    def test_step_without_events_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_event_budget_guards_against_livelock(self):
        sim = Simulator()

        def spin():
            while True:
                yield sim.timeout(0)

        sim.process(spin())
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_request_is_an_error(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_use_helper_and_utilization(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        sim.process(resource.use(2.0))
        sim.process(resource.use(2.0))
        sim.run()
        assert sim.now == 4.0
        assert resource.utilization() == pytest.approx(1.0)
        assert resource.busy_core_seconds == pytest.approx(4.0)

    def test_reset_utilization_restarts_window(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        sim.process(resource.use(2.0))
        sim.run()
        resource.reset_utilization()

        def idle():
            yield sim.timeout(2.0)

        sim.process(idle())
        sim.run()
        assert resource.utilization() == pytest.approx(0.0)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)


class TestStore:
    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for index in range(3):
                yield store.put(index)
                yield sim.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [0, 1, 2]

    def test_bounded_store_blocks_producer(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            for index in range(3):
                yield store.put(index)
                timeline.append(("put", index, sim.now))

        def consumer():
            for _ in range(3):
                yield sim.timeout(2)
                item = yield store.get()
                timeline.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        puts = [entry for entry in timeline if entry[0] == "put"]
        # The second put can only complete once the consumer freed a slot at t=2.
        assert puts[0][2] == 0.0
        assert puts[1][2] == 2.0

    def test_get_blocks_until_item_available(self):
        sim = Simulator()
        store = Store(sim)
        arrival = []

        def consumer():
            item = yield store.get()
            arrival.append((item, sim.now))

        def producer():
            yield sim.timeout(5)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert arrival == [("late", 5.0)]

    def test_counters(self):
        sim = Simulator()
        store = Store(sim)

        def flow():
            yield store.put(1)
            yield store.put(2)
            yield store.get()

        sim.process(flow())
        sim.run()
        assert store.total_put == 2
        assert store.total_got == 1
        assert len(store) == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)


class TestContainer:
    def test_put_get_and_peak(self):
        sim = Simulator()
        container = Container(sim, capacity=100)
        container.put(60)
        container.put(30)
        container.get(50)
        assert container.level == 40
        assert container.peak_level == 90
        assert container.available == 60

    def test_overflow_and_underflow_rejected(self):
        sim = Simulator()
        container = Container(sim, capacity=10)
        with pytest.raises(SimulationError):
            container.put(11)
        with pytest.raises(SimulationError):
            container.get(1)

    def test_initial_level_validation(self):
        with pytest.raises(SimulationError):
            Container(Simulator(), capacity=10, initial=20)


class TestProcessorSharing:
    def test_single_job_runs_at_full_speed(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim)
        done = []

        def job():
            yield ps.execute(3.0)
            done.append(sim.now)

        sim.process(job())
        sim.run()
        assert done == [3.0]

    def test_two_equal_jobs_share_capacity(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim)
        done = []

        def job():
            yield ps.execute(1.0)
            done.append(sim.now)

        sim.process(job())
        sim.process(job())
        sim.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_late_arrival_slows_remaining_work(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim)
        done = {}

        def job(name, work, delay):
            yield sim.timeout(delay)
            yield ps.execute(work)
            done[name] = sim.now

        sim.process(job("first", 2.0, 0.0))
        sim.process(job("second", 1.0, 1.0))
        sim.run()
        # First runs alone for 1s (1s of work done), then shares: remaining 1s
        # of work takes 2s, finishing at t=3; second's 1s also takes 2s.
        assert done["first"] == pytest.approx(3.0)
        assert done["second"] == pytest.approx(3.0)

    def test_efficiency_curve_reduces_aggregate_throughput(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim, efficiency=lambda n: 0.5 if n > 1 else 1.0)
        done = []

        def job():
            yield ps.execute(1.0)
            done.append(sim.now)

        sim.process(job())
        sim.process(job())
        sim.run()
        assert done == [pytest.approx(4.0), pytest.approx(4.0)]

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim)
        event = ps.execute(0.0)
        assert event.triggered

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            ProcessorSharingResource(Simulator()).execute(-1.0)

    def test_utilization_reflects_busy_time(self):
        sim = Simulator()
        ps = ProcessorSharingResource(sim)
        done = []

        def job():
            yield ps.execute(2.0)
            done.append(sim.now)
            yield sim.timeout(2.0)

        sim.process(job())
        sim.run()
        assert ps.utilization() == pytest.approx(0.5)
