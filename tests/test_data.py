"""Unit tests for datasets, samplers, transforms, collation and the DataLoader."""

import time

import numpy as np
import pytest

from repro.data import (
    BatchSampler,
    ConcatDataset,
    DataLoader,
    RandomSampler,
    SequentialSampler,
    Subset,
    SyntheticAudioDataset,
    SyntheticCaptionDataset,
    SyntheticImageDataset,
    SyntheticInstructionDataset,
    default_collate,
    make_dataset,
)
from repro.data.dataset import train_val_split
from repro.data.samplers import SubsetSampler
from repro.data.synthetic import SampleRecord
from repro.data.transforms import (
    AudioGain,
    AudioRandomCrop,
    CenterCrop,
    Compose,
    DecodeAudio,
    DecodeJpeg,
    Lambda,
    Normalize,
    PadSequence,
    RandomCrop,
    RandomHorizontalFlip,
    Resize,
    ToTensor,
    TokenizeCaption,
    alpaca_pipeline,
    clmr_train_pipeline,
    imagenet_train_pipeline,
)
from repro.tensor import Tensor


class TestSyntheticDatasets:
    def test_image_dataset_items_are_deterministic(self):
        dataset = SyntheticImageDataset(16, payload_bytes=32)
        first = dataset[3]
        second = dataset[3]
        assert isinstance(first, SampleRecord)
        np.testing.assert_array_equal(first.payload, second.payload)
        assert first.label == second.label

    def test_image_dataset_reports_realistic_stored_size(self):
        dataset = SyntheticImageDataset(4, payload_bytes=64)
        assert dataset[0].stored_nbytes == SyntheticImageDataset.DEFAULT_ENCODED_BYTES

    def test_image_dataset_bounds(self):
        dataset = SyntheticImageDataset(4, payload_bytes=16)
        assert dataset[-1].index == 3
        with pytest.raises(IndexError):
            dataset[4]
        with pytest.raises(ValueError):
            SyntheticImageDataset(0)

    def test_audio_dataset_shapes(self):
        dataset = SyntheticAudioDataset(4, payload_bytes=16)
        record = dataset[1]
        assert record.kind == "audio"
        assert dataset.decoded_shape()[0] == dataset.clip_samples

    def test_caption_dataset_item_structure(self):
        dataset = SyntheticCaptionDataset(4, payload_bytes=16)
        item = dataset[0]
        assert set(item) >= {"payload", "caption", "stored_nbytes"}
        assert item["caption"].shape == (dataset.caption_length,)

    def test_instruction_dataset_lengths_are_bounded(self):
        dataset = SyntheticInstructionDataset(32, max_sequence_length=128, mean_sequence_length=64)
        lengths = [dataset[i]["length"] for i in range(32)]
        assert all(16 <= length <= 128 for length in lengths)

    def test_make_dataset_factory(self):
        assert isinstance(make_dataset("imagenet", 8), SyntheticImageDataset)
        assert isinstance(make_dataset("librispeech", 8), SyntheticAudioDataset)
        assert isinstance(make_dataset("cc3m", 8), SyntheticCaptionDataset)
        assert isinstance(make_dataset("alpaca", 8), SyntheticInstructionDataset)
        with pytest.raises(ValueError):
            make_dataset("mnist")

    def test_different_seeds_give_different_data(self):
        a = SyntheticImageDataset(4, payload_bytes=64, seed=0)[0].payload
        b = SyntheticImageDataset(4, payload_bytes=64, seed=1)[0].payload
        assert not np.array_equal(a, b)


class TestDatasetComposition:
    def test_subset_and_concat(self):
        dataset = SyntheticImageDataset(10, payload_bytes=8)
        subset = Subset(dataset, [0, 2, 4])
        assert len(subset) == 3
        assert subset[1].index == 2
        combined = ConcatDataset([subset, Subset(dataset, [5])])
        assert len(combined) == 4
        assert combined[3].index == 5

    def test_subset_index_validation(self):
        dataset = SyntheticImageDataset(4, payload_bytes=8)
        with pytest.raises(IndexError):
            Subset(dataset, [9])

    def test_concat_bounds(self):
        dataset = ConcatDataset([SyntheticImageDataset(2, payload_bytes=8)])
        with pytest.raises(IndexError):
            dataset[2]

    def test_train_val_split_is_disjoint_and_complete(self):
        dataset = SyntheticImageDataset(20, payload_bytes=8)
        train, val = train_val_split(dataset, 0.25, seed=1)
        train_indices = set(train.indices)
        val_indices = set(val.indices)
        assert len(val) == 5
        assert train_indices.isdisjoint(val_indices)
        assert train_indices | val_indices == set(range(20))

    def test_train_val_split_validates_fraction(self):
        with pytest.raises(ValueError):
            train_val_split(SyntheticImageDataset(4, payload_bytes=8), 1.5)


class TestSamplers:
    def test_sequential_sampler_order(self):
        dataset = SyntheticImageDataset(5, payload_bytes=8)
        assert list(SequentialSampler(dataset)) == [0, 1, 2, 3, 4]

    def test_random_sampler_is_permutation(self):
        dataset = SyntheticImageDataset(50, payload_bytes=8)
        sampler = RandomSampler(dataset, seed=3, reseed_each_epoch=False)
        order = list(sampler)
        assert sorted(order) == list(range(50))
        assert order != list(range(50))
        assert list(sampler) == order  # fixed epoch -> same permutation

    def test_random_sampler_reseeds_each_epoch(self):
        dataset = SyntheticImageDataset(50, payload_bytes=8)
        sampler = RandomSampler(dataset, seed=3)
        assert list(sampler) != list(sampler)

    def test_random_sampler_with_replacement_and_num_samples(self):
        dataset = SyntheticImageDataset(10, payload_bytes=8)
        sampler = RandomSampler(dataset, replacement=True, num_samples=25)
        assert len(list(sampler)) == 25

    def test_subset_sampler(self):
        assert list(SubsetSampler([4, 1, 2])) == [4, 1, 2]

    def test_batch_sampler_grouping_and_drop_last(self):
        dataset = SyntheticImageDataset(10, payload_bytes=8)
        batches = list(BatchSampler(SequentialSampler(dataset), 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        dropped = list(BatchSampler(SequentialSampler(dataset), 4, drop_last=True))
        assert [len(b) for b in dropped] == [4, 4]
        assert len(BatchSampler(SequentialSampler(dataset), 4)) == 3
        assert len(BatchSampler(SequentialSampler(dataset), 4, drop_last=True)) == 2

    def test_batch_sampler_validates_batch_size(self):
        with pytest.raises(ValueError):
            BatchSampler(SubsetSampler([1]), 0)


class TestTransforms:
    def _image_item(self, size=64):
        record = SyntheticImageDataset(4, payload_bytes=16)[0]
        return DecodeJpeg(height=size, width=size)(record)

    def test_decode_jpeg_is_deterministic_per_index(self):
        decode = DecodeJpeg(height=32, width=32)
        dataset = SyntheticImageDataset(4, payload_bytes=16)
        a = decode(dataset[2])["image"]
        b = decode(dataset[2])["image"]
        np.testing.assert_array_equal(a, b)

    def test_decode_jpeg_rejects_wrong_kind(self):
        record = SyntheticAudioDataset(2, payload_bytes=16)[0]
        with pytest.raises(TypeError):
            DecodeJpeg()(record)

    def test_resize_and_crops(self):
        item = self._image_item(64)
        resized = Resize(48)(item)
        assert resized["image"].shape == (48, 48, 3)
        cropped = RandomCrop(32, seed=0)(resized)
        assert cropped["image"].shape == (32, 32, 3)
        centered = CenterCrop(24)(cropped)
        assert centered["image"].shape == (24, 24, 3)

    def test_random_crop_rejects_too_small_images(self):
        item = self._image_item(16)
        with pytest.raises(ValueError):
            RandomCrop(32)(item)

    def test_flip_probability_extremes(self):
        item = self._image_item(8)
        always = RandomHorizontalFlip(p=1.0)(dict(item))
        never = RandomHorizontalFlip(p=0.0)(dict(item))
        np.testing.assert_array_equal(never["image"], item["image"])
        np.testing.assert_array_equal(always["image"], item["image"][:, ::-1])

    def test_normalize_scales_to_float(self):
        item = Normalize()(self._image_item(8))
        image = item["image"]
        assert image.dtype == np.float32
        assert image.max() < 10.0

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize(std=(0.0, 1.0, 1.0))

    def test_audio_transforms(self):
        record = SyntheticAudioDataset(2, payload_bytes=16)[0]
        item = DecodeAudio(clip_samples=2048)(record)
        cropped = AudioRandomCrop(crop_samples=1024)(item)
        assert cropped["waveform"].shape == (1024,)
        amplified = AudioGain(min_gain=2.0, max_gain=2.0)(cropped)
        np.testing.assert_allclose(amplified["waveform"], cropped["waveform"] * 2.0, rtol=1e-6)

    def test_tokenize_caption_pads_and_truncates(self):
        short = TokenizeCaption(length=10)({"caption": np.arange(4)})
        assert short["caption"].shape == (10,)
        long = TokenizeCaption(length=3)({"caption": np.arange(8)})
        assert long["caption"].tolist() == [0, 1, 2]

    def test_pad_sequence_builds_mask(self):
        item = PadSequence(max_length=8)({"tokens": np.arange(5)})
        assert item["tokens"].shape == (8,)
        assert item["attention_mask"].sum() == 5

    def test_to_tensor_converts_and_transposes(self):
        item = ToTensor()(Normalize()(self._image_item(8)))
        assert isinstance(item["image"], Tensor)
        assert item["image"].shape == (3, 8, 8)

    def test_compose_cost_is_sum_of_parts(self):
        pipeline = Compose([DecodeJpeg(), Resize(), Normalize()])
        expected = DecodeJpeg.nominal_cpu_seconds + Resize.nominal_cpu_seconds + Normalize.nominal_cpu_seconds
        assert pipeline.nominal_cpu_seconds == pytest.approx(expected)

    def test_lambda_transform_cost_annotation(self):
        transform = Lambda(lambda item: item, nominal_cpu_seconds=1.5e-3)
        assert transform.nominal_cpu_seconds == 1.5e-3
        assert transform({"x": 1}) == {"x": 1}

    def test_standard_pipelines_run_end_to_end(self):
        image_item = imagenet_train_pipeline(image_size=32)(SyntheticImageDataset(2, payload_bytes=16)[0])
        assert image_item["image"].shape == (3, 32, 32)
        audio_item = clmr_train_pipeline(clip_samples=512)(SyntheticAudioDataset(2, payload_bytes=16)[0])
        assert audio_item["waveform"].shape == (512,)
        text_item = alpaca_pipeline(max_length=64)(SyntheticInstructionDataset(2)[0])
        assert text_item["tokens"].shape == (64,)


class TestCollate:
    def test_collate_dict_items(self):
        items = [
            {"image": np.zeros((3, 4, 4), dtype=np.float32), "label": i} for i in range(5)
        ]
        batch = default_collate(items)
        assert batch["image"].shape == (5, 3, 4, 4)
        assert batch["label"].tolist() == [0, 1, 2, 3, 4]

    def test_collate_tuple_items(self):
        items = [(np.zeros(4, dtype=np.float32), float(i)) for i in range(3)]
        batch = default_collate(items)
        assert batch["inputs"].shape == (3, 4)
        assert batch["targets"].dtype.name == "float32"

    def test_collate_rejects_empty_and_unknown(self):
        with pytest.raises(ValueError):
            default_collate([])
        with pytest.raises(TypeError):
            default_collate(["a", "b"])


class TestDataLoader:
    def _loader(self, size=24, batch_size=4, **kwargs):
        dataset = SyntheticImageDataset(size, payload_bytes=16)
        pipeline = Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()])
        return DataLoader(dataset, batch_size=batch_size, transform=pipeline, **kwargs)

    def test_sync_loader_yields_all_batches_in_order(self):
        loader = self._loader()
        batches = list(loader)
        assert len(batches) == len(loader) == 6
        assert batches[0]["image"].shape == (4, 3, 16, 16)
        assert batches[0]["index"].tolist() == [0, 1, 2, 3]

    def test_threaded_loader_matches_sync_loader(self):
        sync = [b["index"].tolist() for b in self._loader()]
        threaded = [b["index"].tolist() for b in self._loader(num_workers=3)]
        assert threaded == sync

    def test_drop_last(self):
        loader = self._loader(size=10, batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert len(list(loader)) == 2

    def test_shuffle_changes_order_but_not_content(self):
        loader = self._loader(shuffle=True, seed=7)
        indices = [i for batch in loader for i in batch["index"].tolist()]
        assert sorted(indices) == list(range(24))
        assert indices != list(range(24))

    def test_loader_argument_validation(self):
        dataset = SyntheticImageDataset(8, payload_bytes=16)
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(dataset, num_workers=-1)
        with pytest.raises(ValueError):
            DataLoader(dataset, shuffle=True, sampler=SequentialSampler(dataset))
        with pytest.raises(ValueError):
            DataLoader(dataset, prefetch_factor=0)

    def test_nominal_cost_and_stored_bytes_metadata(self):
        loader = self._loader()
        assert loader.nominal_cpu_seconds_per_item > 0
        assert loader.stored_bytes_per_item == SyntheticImageDataset.DEFAULT_ENCODED_BYTES

    def test_worker_errors_propagate(self):
        dataset = SyntheticImageDataset(8, payload_bytes=16)

        def explode(item):
            raise RuntimeError("boom")

        loader = DataLoader(dataset, batch_size=2, transform=explode, num_workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            list(loader)

    def test_multiple_epochs_reuse_loader(self):
        loader = self._loader(size=8, batch_size=4)
        assert len(list(loader)) == 2
        assert len(list(loader)) == 2


class TestPrefetchIter:
    """Edge cases of the explicit-prefetch iterator an outer pipeline uses."""

    def _loader(self, size=24, batch_size=4, **kwargs):
        dataset = SyntheticImageDataset(size, payload_bytes=16)
        pipeline = Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()])
        return DataLoader(dataset, batch_size=batch_size, transform=pipeline, **kwargs)

    def test_zero_workers_stays_synchronous(self):
        """num_workers=0 must load inline — no threads, no semaphore — even
        when the loader itself was configured with workers (the PR 3 deadlock
        fix lives on the threaded path; this pins the zero-worker regression)."""
        loader = self._loader(num_workers=3)
        iterator = loader.prefetch_iter(max_in_flight=2, num_workers=0)
        assert iterator._mode == "sync"
        assert not hasattr(iterator, "_workers")
        indices = [batch["index"].tolist() for batch in iterator]
        assert indices == [batch["index"].tolist() for batch in self._loader()]

    def test_max_in_flight_one_is_strictly_bounded(self):
        """The tightest budget: one permit.  Every batch must still arrive in
        sampler order, and at no point may more than max_in_flight + 1
        batches have been loaded beyond what the consumer took (the worker
        may hold at most the single permitted batch)."""
        loader = self._loader(size=32, num_workers=3)
        iterator = loader.prefetch_iter(max_in_flight=1)
        seen = []
        for batch in iterator:
            seen.append(batch["index"].tolist())
            time.sleep(0.002)  # give workers a window to overrun the budget
            with iterator._results_lock:
                posted = len(iterator._results)
            assert posted <= 1, f"budget leaked: {posted} batches posted ahead"
        assert seen == [batch["index"].tolist() for batch in self._loader(size=32)]

    def test_close_mid_iteration_unblocks_and_stops(self):
        loader = self._loader(size=64, num_workers=2)
        iterator = loader.prefetch_iter(max_in_flight=2)
        first = next(iterator)
        assert first["index"].tolist() == [0, 1, 2, 3]
        iterator.close()
        # Workers are stopped; iteration must end instead of spinning on a
        # result that will never be produced.
        with pytest.raises(StopIteration):
            while True:
                next(iterator)
        # close() is idempotent and the worker threads exit promptly.
        iterator.close()
        deadline = time.time() + 5
        while any(w.is_alive() for w in iterator._workers) and time.time() < deadline:
            time.sleep(0.01)
        assert not any(w.is_alive() for w in iterator._workers)

    def test_close_mid_iteration_synchronous_mode(self):
        iterator = self._loader().prefetch_iter(num_workers=0)
        next(iterator)
        iterator.close()  # no-op in sync mode, must not raise
        assert next(iterator)["index"].tolist() == [4, 5, 6, 7]

    def test_explicit_batches_subset(self):
        """An explicit batch list replaces the sampler draw — the epoch cache
        loads only a partially-cached epoch's misses this way."""
        loader = self._loader(num_workers=2)
        full = list(loader.batch_sampler)
        subset = [full[4], full[1]]  # caller's order, not sampler order
        iterator = loader.prefetch_iter(max_in_flight=2, batches=subset)
        batches = [batch["index"].tolist() for batch in iterator]
        assert batches == [[16, 17, 18, 19], [4, 5, 6, 7]]
        assert iterator.sampled_batches == [list(b) for b in subset]
