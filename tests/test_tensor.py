"""Unit tests for the tensor substrate (device, dtype, Tensor)."""

import numpy as np
import pytest

from repro.tensor import (
    DeviceMismatchError,
    Device,
    Tensor,
    cat,
    cpu,
    cuda,
    from_numpy,
    full,
    stack,
    zeros,
)
from repro.tensor.device import as_device
from repro.tensor.dtype import all_dtypes, as_dtype
from repro.tensor.tensor import arange, empty


class TestDevice:
    def test_cpu_device_has_no_index(self):
        assert cpu().type == "cpu"
        assert cpu().index is None

    def test_cuda_device_defaults_to_index_zero(self):
        assert cuda().index == 0
        assert cuda(3).index == 3

    def test_device_parses_string_with_index(self):
        device = Device("cuda:2")
        assert device.type == "cuda"
        assert device.index == 2

    def test_device_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            Device("tpu")

    def test_device_rejects_cpu_with_index(self):
        with pytest.raises(ValueError):
            Device("cpu", 1)

    def test_device_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Device("cuda", -1)

    def test_device_rejects_double_index(self):
        with pytest.raises(ValueError):
            Device("cuda:1", 2)

    def test_device_string_roundtrip(self):
        assert str(Device("cuda:1")) == "cuda:1"
        assert str(cpu()) == "cpu"

    def test_as_device_coerces_strings_and_passthrough(self):
        assert as_device("cuda:1") == cuda(1)
        device = cuda(2)
        assert as_device(device) is device

    def test_as_device_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_device(42)

    def test_devices_are_comparable_and_hashable(self):
        assert cuda(0) == Device("cuda:0")
        assert len({cuda(0), Device("cuda", 0), cpu()}) == 2

    def test_is_cuda_and_is_cpu(self):
        assert cuda().is_cuda and not cuda().is_cpu
        assert cpu().is_cpu and not cpu().is_cuda


class TestDType:
    def test_as_dtype_from_string(self):
        assert as_dtype("float32").itemsize == 4
        assert as_dtype("int64").itemsize == 8

    def test_as_dtype_from_numpy(self):
        assert as_dtype(np.float16).name == "float16"
        assert as_dtype(np.dtype("uint8")).name == "uint8"

    def test_as_dtype_rejects_unsupported(self):
        with pytest.raises(TypeError):
            as_dtype("complex128")

    def test_floating_point_flag(self):
        assert as_dtype("float32").is_floating_point
        assert not as_dtype("int32").is_floating_point

    def test_all_dtypes_are_roundtrippable(self):
        for dtype in all_dtypes():
            assert as_dtype(dtype.name) == dtype
            assert np.dtype(dtype.name).itemsize == dtype.itemsize


class TestTensorBasics:
    def test_from_numpy_wraps_without_copy(self):
        array = np.arange(12, dtype=np.float32)
        tensor = from_numpy(array)
        assert tensor.shape == (12,)
        assert tensor.numpy() is array

    def test_constructor_rejects_non_arrays(self):
        with pytest.raises(TypeError):
            Tensor([1, 2, 3])

    def test_zeros_full_empty_and_arange(self):
        assert zeros((2, 3)).numpy().sum() == 0
        assert full((2, 2), 7, dtype="int32").numpy().tolist() == [[7, 7], [7, 7]]
        assert empty((4,)).shape == (4,)
        assert arange(5).tolist() == [0, 1, 2, 3, 4]

    def test_shape_metadata(self):
        tensor = zeros((4, 3, 2))
        assert tensor.ndim == 3
        assert tensor.numel() == 24
        assert tensor.nbytes == 24 * 4
        assert len(tensor) == 4

    def test_len_of_scalar_raises(self):
        scalar = from_numpy(np.asarray(3.0))
        with pytest.raises(TypeError):
            len(scalar)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            zeros((-1, 2))

    def test_reshape_and_flatten_are_views(self):
        tensor = arange(12, dtype="float32")
        reshaped = tensor.reshape(3, 4)
        assert reshaped.shape == (3, 4)
        assert reshaped.shares_memory_with(tensor)
        assert tensor.flatten().shape == (12,)

    def test_clone_copies_data(self):
        tensor = arange(4, dtype="float32")
        clone = tensor.clone()
        clone.numpy()[0] = 99
        assert tensor.numpy()[0] == 0

    def test_astype_changes_dtype(self):
        tensor = arange(4, dtype="int64").astype("float32")
        assert tensor.dtype.name == "float32"


class TestTensorViews:
    def test_getitem_row_is_view(self):
        tensor = from_numpy(np.arange(20, dtype=np.float32).reshape(4, 5))
        row = tensor[1]
        assert row.shape == (5,)
        assert row.shares_memory_with(tensor)

    def test_slice_rows_is_zero_copy(self):
        tensor = from_numpy(np.arange(40, dtype=np.float32).reshape(8, 5))
        part = tensor.slice_rows(2, 6)
        assert part.shape == (4, 5)
        assert part.shares_memory_with(tensor)
        np.testing.assert_array_equal(part.numpy(), tensor.numpy()[2:6])

    def test_slice_rows_bounds_checked(self):
        tensor = zeros((4, 2))
        with pytest.raises(IndexError):
            tensor.slice_rows(2, 6)

    def test_slice_rows_on_scalar_raises(self):
        scalar = from_numpy(np.asarray(1.0))
        from repro.tensor.errors import TensorError

        with pytest.raises(TensorError):
            scalar.slice_rows(0, 1)

    def test_fancy_indexing_materializes_copy(self):
        tensor = from_numpy(np.arange(10, dtype=np.float32))
        picked = tensor[[0, 3, 7]]
        assert picked.shape == (3,)
        assert not picked.shares_memory_with(tensor)


class TestTensorDevices:
    def test_to_same_device_returns_self(self):
        tensor = zeros((2,))
        assert tensor.to("cpu") is tensor

    def test_to_cuda_copies_and_tags(self):
        tensor = zeros((2,))
        moved = tensor.cuda(1)
        assert moved.device == cuda(1)
        assert not moved.shares_memory_with(tensor)

    def test_pin_memory_only_on_cpu(self):
        pinned = zeros((2,)).pin_memory()
        assert pinned.is_pinned
        from repro.tensor.errors import TensorError

        with pytest.raises(TensorError):
            zeros((2,)).cuda().pin_memory()

    def test_arithmetic_requires_same_device(self):
        a = zeros((2,))
        b = zeros((2,)).cuda()
        with pytest.raises(DeviceMismatchError):
            _ = a + b


class TestTensorMath:
    def test_elementwise_operations(self):
        a = from_numpy(np.asarray([1.0, 2.0], dtype=np.float32))
        b = from_numpy(np.asarray([3.0, 4.0], dtype=np.float32))
        assert (a + b).tolist() == [4.0, 6.0]
        assert (b - a).tolist() == [2.0, 2.0]
        assert (a * 2).tolist() == [2.0, 4.0]
        assert (b / 2).tolist() == [1.5, 2.0]

    def test_reductions(self):
        tensor = from_numpy(np.asarray([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        assert tensor.sum() == 10.0
        assert tensor.mean() == 2.5
        assert tensor.max() == 4.0
        assert tensor.min() == 1.0

    def test_equal_and_allclose(self):
        a = from_numpy(np.asarray([1.0, 2.0], dtype=np.float32))
        b = from_numpy(np.asarray([1.0, 2.0], dtype=np.float32))
        c = from_numpy(np.asarray([1.0, 2.0 + 1e-9], dtype=np.float32))
        assert a.equal(b)
        assert a.allclose(c)
        assert not a.equal(from_numpy(np.asarray([1.0], dtype=np.float32)))


class TestStackAndCat:
    def test_stack_adds_leading_dimension(self):
        parts = [from_numpy(np.full((3,), i, dtype=np.float32)) for i in range(4)]
        stacked = stack(parts)
        assert stacked.shape == (4, 3)
        assert stacked.numpy()[2, 0] == 2

    def test_cat_concatenates_rows(self):
        a = zeros((2, 3))
        b = zeros((3, 3))
        assert cat([a, b]).shape == (5, 3)

    def test_cat_along_other_dimension(self):
        a = zeros((2, 3))
        b = zeros((2, 1))
        assert cat([a, b], dim=1).shape == (2, 4)

    def test_stack_rejects_empty_and_mixed_devices(self):
        with pytest.raises(ValueError):
            stack([])
        with pytest.raises(DeviceMismatchError):
            stack([zeros((2,)), zeros((2,)).cuda()])
