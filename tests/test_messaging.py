"""Unit tests for the messaging layer (envelopes, hubs, sockets, heartbeats)."""

import pytest

from repro.messaging import (
    EndpointClosedError,
    HeartbeatMonitor,
    HeartbeatSender,
    InProcHub,
    Message,
    MessageKind,
    MessagingError,
    PubSocket,
    PullSocket,
    PushSocket,
    RepSocket,
    ReqSocket,
    SubSocket,
    TimeoutError_,
)


class TestMessage:
    def test_wire_roundtrip(self):
        message = Message(topic="batches", kind=MessageKind.BATCH, sender="p0", body={"i": 3})
        decoded = Message.from_bytes(message.to_bytes())
        assert decoded.topic == "batches"
        assert decoded.kind is MessageKind.BATCH
        assert decoded.body == {"i": 3}
        assert decoded.seq == message.seq

    def test_topic_prefix_matching(self):
        message = Message(topic="consumer/c1", kind=MessageKind.BATCH, sender="p")
        assert message.matches_topic("consumer/")
        assert message.matches_topic("")
        assert not message.matches_topic("broadcast")

    def test_sequence_numbers_increase(self):
        first = Message(topic="", kind=MessageKind.ACK, sender="a")
        second = Message(topic="", kind=MessageKind.ACK, sender="a")
        assert second.seq > first.seq


class TestInProcHub:
    def test_publish_reaches_all_matching_subscribers(self):
        hub = InProcHub()
        pub = PubSocket(hub, "data")
        sub_all = SubSocket(hub, "data")
        sub_personal = SubSocket(hub, "data", topics=("consumer/c1",))
        delivered = pub.send(MessageKind.BATCH, body=1, topic="broadcast")
        assert delivered == 1
        assert sub_all.recv(timeout=1).body == 1
        assert sub_personal.try_recv() is None
        pub.send(MessageKind.BATCH, body=2, topic="consumer/c1")
        assert sub_personal.recv(timeout=1).body == 2

    def test_push_requires_bound_pull(self):
        hub = InProcHub()
        push = PushSocket(hub, "control")
        with pytest.raises(MessagingError):
            push.send(MessageKind.ACK, body={})
        pull = PullSocket(hub, "control")
        push.send(MessageKind.ACK, body={"ok": True})
        assert pull.recv(timeout=1).body == {"ok": True}

    def test_double_bind_rejected(self):
        hub = InProcHub()
        PullSocket(hub, "control")
        with pytest.raises(MessagingError):
            PullSocket(hub, "control")

    def test_disconnect_stops_delivery(self):
        hub = InProcHub()
        pub = PubSocket(hub, "data")
        sub = SubSocket(hub, "data")
        sub.close()
        assert pub.send(MessageKind.BATCH, body=1) == 0

    def test_recv_timeout_raises(self):
        hub = InProcHub()
        sub = SubSocket(hub, "data")
        with pytest.raises(TimeoutError_):
            sub.recv(timeout=0.01)

    def test_pull_drain_returns_everything_pending(self):
        hub = InProcHub()
        pull = PullSocket(hub, "control")
        push = PushSocket(hub, "control")
        for index in range(5):
            push.send(MessageKind.ACK, body=index)
        drained = pull.drain()
        assert [m.body for m in drained] == list(range(5))
        assert pull.drain() == []

    def test_hub_counts_traffic(self):
        hub = InProcHub()
        pub = PubSocket(hub, "data")
        SubSocket(hub, "data")
        pull = PullSocket(hub, "ack")
        PushSocket(hub, "ack").send(MessageKind.ACK)
        pub.send(MessageKind.BATCH)
        assert hub.messages_published == 1
        assert hub.messages_pushed == 1
        assert pull.pending() == 1


class TestReqRep:
    def test_request_reply_roundtrip(self):
        hub = InProcHub()
        rep = RepSocket(hub, "status")
        req = ReqSocket(hub, "status")

        import threading

        def server():
            request = rep.recv(timeout=2)
            rep.reply(request, {"echo": request.body["payload"]})

        thread = threading.Thread(target=server)
        thread.start()
        reply = req.request({"value": 41}, timeout=2)
        thread.join()
        assert reply == {"echo": {"value": 41}}

    def test_serve_pending_handles_queued_requests(self):
        hub = InProcHub()
        rep = RepSocket(hub, "status")
        req_a = ReqSocket(hub, "status", identity="a")
        req_b = ReqSocket(hub, "status", identity="b")
        # Queue both requests before serving.
        hub.push("status", Message(topic="", kind=MessageKind.REQUEST, sender="a",
                                   body={"reply_to": f"status/reply/a", "payload": 1}))
        hub.push("status", Message(topic="", kind=MessageKind.REQUEST, sender="b",
                                   body={"reply_to": f"status/reply/b", "payload": 2}))
        served = rep.serve_pending(lambda payload: payload * 10)
        assert served == 2

    def test_reply_requires_reply_to(self):
        hub = InProcHub()
        rep = RepSocket(hub, "status")
        bogus = Message(topic="", kind=MessageKind.REQUEST, sender="x", body={})
        with pytest.raises(MessagingError):
            rep.reply(bogus, {})


class TestHeartbeats:
    def test_monitor_tracks_and_detaches_silent_consumers(self):
        clock = {"now": 0.0}
        monitor = HeartbeatMonitor(detach_timeout=5.0, clock=lambda: clock["now"])
        monitor.beat("c1")
        monitor.beat("c2")
        clock["now"] = 3.0
        monitor.beat("c2")
        clock["now"] = 7.0
        detached = monitor.sweep()
        assert detached == ["c1"]
        assert monitor.live_consumers() == ["c2"]
        assert monitor.detached_consumers() == ["c1"]

    def test_detached_consumer_can_reregister(self):
        clock = {"now": 0.0}
        monitor = HeartbeatMonitor(detach_timeout=1.0, clock=lambda: clock["now"])
        monitor.beat("c1")
        clock["now"] = 5.0
        monitor.sweep()
        monitor.beat("c1")
        assert monitor.is_live("c1")

    def test_forget_removes_consumer(self):
        monitor = HeartbeatMonitor(detach_timeout=1.0)
        monitor.beat("c1")
        monitor.forget("c1")
        assert monitor.live_consumers() == []

    def test_silence_of_unknown_consumer_is_none(self):
        monitor = HeartbeatMonitor()
        assert monitor.silence_of("ghost") is None

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(detach_timeout=0)

    def test_sender_sends_on_interval_only(self):
        hub = InProcHub()
        pull = PullSocket(hub, "control")
        push = PushSocket(hub, "control")
        clock = {"now": 0.0}
        sender = HeartbeatSender(push, "c1", interval=1.0, clock=lambda: clock["now"])
        assert sender.maybe_send() is True
        assert sender.maybe_send() is False
        clock["now"] = 1.5
        assert sender.maybe_send() is True
        assert sender.beats_sent == 2
        beats = pull.drain()
        assert all(m.kind is MessageKind.HEARTBEAT for m in beats)
        assert all(m.body["consumer_id"] == "c1" for m in beats)

    def test_sender_rejects_bad_interval(self):
        hub = InProcHub()
        push = PushSocket(hub, "control")
        with pytest.raises(ValueError):
            HeartbeatSender(push, "c1", interval=0)


class TestTcpTransport:
    def test_tcp_pub_sub_and_push_pull_roundtrip(self):
        from repro.messaging.transport import TcpHub
        from repro.messaging.sockets import (
            TcpPubSocket,
            TcpPullSocket,
            TcpPushSocket,
            TcpSubSocket,
        )

        hub = TcpHub()
        try:
            sub = TcpSubSocket(hub.host, hub.port, "data")
            pull = TcpPullSocket(hub.host, hub.port, "control")
            pub = TcpPubSocket(hub.host, hub.port, "data")
            push = TcpPushSocket(hub.host, hub.port, "control")
            import time

            time.sleep(0.1)  # let the broker register the subscriber
            pub.send(MessageKind.BATCH, body={"n": 1}, topic="broadcast")
            push.send(MessageKind.ACK, body={"n": 2})
            assert sub.recv(timeout=5).body == {"n": 1}
            assert pull.recv(timeout=5).body == {"n": 2}
            for sock in (sub, pull, pub, push):
                sock.close()
        finally:
            hub.close()
