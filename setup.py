"""Setuptools entry point (kept for environments without PEP 660 support)."""
from setuptools import setup

setup()
